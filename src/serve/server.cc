#include "serve/server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <list>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#ifndef _WIN32
#include <sys/socket.h>
#endif

#include "kernel/budget.h"
#include "kernel/handles.h"
#include "kernel/kernel.h"
#include "matrix/rewrite.h"
#include "matrix/search.h"
#include "plans/registry.h"
#include "store/serialize.h"
#include "util/bounded_queue.h"
#include "util/net.h"
#include "util/rng.h"

namespace ektelo::serve {

namespace {

/// Structural hash of a request's *content*: everything that shapes the
/// answer (plan, eps, domain, queries, totals, mode) and nothing that
/// does not (request_id, coalesce flag, tenant — the tenant enters the
/// noise seed separately).  Two requests with equal hashes are the same
/// query, so they may share one execution; the hash also keys the
/// per-execution noise stream, which is what makes replies bitwise
/// deterministic under any scheduling.
uint64_t RequestContentHash(const InvokeRequest& req) {
  store::ByteWriter w;
  w.U64(req.plan.size());
  w.Raw(reinterpret_cast<const uint8_t*>(req.plan.data()), req.plan.size());
  w.F64(req.eps);
  w.U64(req.dims.size());
  for (std::size_t d : req.dims) w.U64(d);
  w.U64(req.ranges.size());
  for (const RangeQuery& q : req.ranges) {
    w.U64(q.lo);
    w.U64(q.hi);
  }
  w.F64(req.known_total);
  w.U64(req.stripe_dim);
  w.U8(req.mode);
  return store::Checksum64(w.bytes());
}

std::string CoalesceKey(const std::string& tenant, uint64_t hash) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), ":%016llx", (unsigned long long)hash);
  return tenant + buf;
}

/// Strict numeric env parses, mirroring the EKTELO_CACHE_* handling:
/// unparsable values warn on stderr and keep the default.
bool EnvU64(const char* name, uint64_t* out) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  if (*v >= '0' && *v <= '9') {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end != nullptr && *end == '\0') {
      *out = parsed;
      return true;
    }
  }
  std::fprintf(stderr, "ektelo: ignoring unparsable %s=%s\n", name, v);
  return false;
}

bool EnvF64(const char* name, double* out) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end != v && end != nullptr && *end == '\0' && parsed >= 0.0) {
    *out = parsed;
    return true;
  }
  std::fprintf(stderr, "ektelo: ignoring unparsable %s=%s\n", name, v);
  return false;
}

}  // namespace

ServerOptions ApplyServeEnv(ServerOptions opts) {
  uint64_t u;
  if (EnvU64("EKTELO_SERVE_WORKERS", &u))
    opts.workers = std::max<std::size_t>(1, std::size_t(u));
  if (EnvU64("EKTELO_SERVE_QUEUE", &u))
    opts.queue_capacity = std::max<std::size_t>(1, std::size_t(u));
  if (EnvU64("EKTELO_SERVE_COALESCE", &u)) opts.coalesce = u != 0;
  if (EnvU64("EKTELO_SERVE_RESPONSE_CACHE", &u))
    opts.response_cache_entries = std::size_t(u);
  EnvF64("EKTELO_SERVE_MAX_EPS", &opts.max_eps);
  if (EnvU64("EKTELO_SERVE_FSYNC", &u)) opts.fsync_ledger = u != 0;
  if (EnvU64("EKTELO_SERVE_DEADLINE_MS", &u)) opts.request_deadline_ms = int(u);
  return opts;
}

#ifndef _WIN32

struct Server::Impl {
  // ---- fixed at Start ----
  ServerOptions opts;
  struct Tenant {
    Table table;
    uint64_t seed = 0;
  };
  std::unordered_map<std::string, Tenant> tenants;
  std::vector<std::string> tenant_order;  // registration order, for Stats
  std::unique_ptr<BudgetLedger> ledger;
  std::optional<net::UnixListener> listener;

  // ---- coalescing ----
  struct Inflight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    InvokeReply reply;  // the leader-shaped reply; followers re-stamp it

    void Publish(InvokeReply r) {
      {
        std::lock_guard<std::mutex> lock(mu);
        reply = std::move(r);
        done = true;
      }
      cv.notify_all();
    }
    InvokeReply Wait() {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return done; });
      return reply;
    }
  };
  struct CachedAnswer {
    Vec estimate;
    std::list<std::string>::iterator lru_it;
  };
  std::mutex co_mu;  // guards inflight, response cache, counters
  std::unordered_map<std::string, std::shared_ptr<Inflight>> inflight;
  std::unordered_map<std::string, CachedAnswer> answers;
  std::list<std::string> answer_lru;  // front = most recent

  // ---- counters (co_mu) ----
  uint64_t received = 0, admitted = 0, refused_budget = 0, refused_queue = 0,
           refused_bad = 0, executions = 0, coalesced = 0,
           refused_durability = 0, refused_deadline = 0;

  // ---- threads / lifecycle ----
  struct Task {
    InvokeRequest req;
    uint64_t hash = 0;
    std::string key;
    bool cacheable = false;
    std::shared_ptr<Inflight> fly;
    // Queue-entry time, for the per-request deadline check.
    std::chrono::steady_clock::time_point enqueued;
  };
  std::unique_ptr<BoundedQueue<Task>> queue;
  std::vector<std::thread> workers;
  std::thread acceptor;
  std::mutex conn_mu;
  std::vector<std::thread> conn_threads;
  std::unordered_set<int> conn_fds;
  std::atomic<bool> stopping{false};
  std::mutex stop_mu;
  std::condition_variable stop_cv;
  bool stop_signaled = false;
  bool joined = false;

  // ------------------------------------------------------------ helpers

  /// Flips the server into shutdown mode (new invokes refuse with
  /// kShuttingDown, AcceptLoop winds down) and wakes WaitForShutdown /
  /// the daemon's stopped() poll.  Thread teardown stays in Stop().
  void SignalStop() {
    stopping.store(true);
    {
      std::lock_guard<std::mutex> lock(stop_mu);
      stop_signaled = true;
    }
    stop_cv.notify_all();
  }

  /// Response-cache lookup (co_mu held).  A hit is a free replay: the
  /// noisy answer it returns was already paid for when first computed.
  const CachedAnswer* CacheFind(const std::string& key) {
    auto it = answers.find(key);
    if (it == answers.end()) return nullptr;
    answer_lru.splice(answer_lru.begin(), answer_lru, it->second.lru_it);
    return &it->second;
  }

  void CacheInsert(const std::string& key, const Vec& estimate) {
    if (opts.response_cache_entries == 0) return;
    if (answers.count(key) != 0) return;
    answer_lru.push_front(key);
    answers[key] = {estimate, answer_lru.begin()};
    while (answers.size() > opts.response_cache_entries) {
      answers.erase(answer_lru.back());
      answer_lru.pop_back();
    }
  }

  /// Validation that needs no kernel and spends nothing.  Returns an
  /// explanation, or empty string when the request is well-formed.
  std::string Validate(const InvokeRequest& req) {
    if (req.tenant.empty() || tenants.count(req.tenant) == 0)
      return "unknown tenant \"" + req.tenant + "\"";
    const Plan* plan = PlanRegistry::Global().Find(req.plan);
    if (plan == nullptr) return "unknown plan \"" + req.plan + "\"";
    if (!(req.eps > 0.0) || !std::isfinite(req.eps))
      return "eps must be positive and finite";
    if (opts.max_eps > 0.0 && req.eps > opts.max_eps)
      return "eps exceeds the per-request ceiling";
    if (req.mode > 2) return "bad matrix mode";
    const std::size_t domain =
        tenants.at(req.tenant).table.schema().TotalDomainSize();
    if (!req.dims.empty()) {
      std::size_t n = 1;
      for (std::size_t d : req.dims) {
        if (d == 0) return "zero dimension";
        n *= d;
      }
      if (n != domain) return "dims do not multiply out to the domain size";
    }
    for (const RangeQuery& q : req.ranges)
      if (q.lo > q.hi || q.hi >= domain) return "range out of domain";
    return "";
  }

  /// One fresh, deterministic execution.  The kernel seed is a pure
  /// function of (tenant seed, request content hash): identical requests
  /// reproduce bitwise, distinct requests draw unrelated noise, and no
  /// scheduling or coalescing decision can perturb either.
  StatusOr<Vec> Execute(const InvokeRequest& req, uint64_t hash) {
    const Plan* plan = PlanRegistry::Global().Find(req.plan);
    if (plan == nullptr) return Status::InvalidArgument("unknown plan");
    const Tenant& tenant = tenants.at(req.tenant);
    const uint64_t exec_seed = SplitMix64(tenant.seed ^ SplitMix64(hash));
    ProtectedKernel kernel(tenant.table, req.eps, exec_seed);
    ProtectedTable root = ProtectedTable::Root(&kernel);
    StatusOr<ProtectedVector> x = root.Vectorize();
    if (!x.ok()) return x.status();
    BudgetScope scope(req.eps);
    // Client-side randomness for plans that use it, derived from the
    // same lineage so it is equally schedule-independent.
    Rng rng(SplitMix64(exec_seed ^ 0xC11E57ull));
    PlanInput in;
    in.dims = req.dims;
    in.mode = MatrixMode(req.mode);
    in.rng = &rng;
    in.ranges = req.ranges;
    in.known_total = req.known_total;
    in.stripe_dim = req.stripe_dim;
    return plan->Execute(*x, scope, in);
  }

  // ------------------------------------------------------------ workers

  void ProcessTask(Task& t) {
    InvokeReply r;
    r.request_id = t.req.request_id;
    // Stale work is refused before the charge: epsilon spent on an
    // answer the client stopped waiting for is epsilon wasted.
    if (opts.request_deadline_ms > 0 &&
        std::chrono::steady_clock::now() - t.enqueued >
            std::chrono::milliseconds(opts.request_deadline_ms)) {
      r.code = ReplyCode::kDeadlineExceeded;
      r.message = "request exceeded the server deadline in queue";
      {
        std::lock_guard<std::mutex> lock(co_mu);
        ++refused_deadline;
        inflight.erase(t.key);
      }
      t.fly->Publish(std::move(r));
      return;
    }
    // Authoritative admission: the durable charge happens HERE, before
    // any kernel exists, and the answer is only released (published)
    // after the charge record is on disk.
    const ChargeResult charge = ledger->Charge(t.req.tenant, t.req.eps);
    if (charge == ChargeResult::kIoError) {
      // Fail CLOSED: the ledger could not durably record the charge, so
      // no answer may be released.  (Charge-before-release means a torn
      // append can only ever over-count the spend, never under-count.)
      r.code = ReplyCode::kDurabilityError;
      r.message = "ledger write failed; request refused";
      std::lock_guard<std::mutex> lock(co_mu);
      ++refused_durability;
    } else if (charge == ChargeResult::kRefused) {
      r.code = ReplyCode::kBudgetExhausted;
      r.message = "tenant budget exhausted";
      std::lock_guard<std::mutex> lock(co_mu);
      ++refused_budget;
    } else {
      if (opts.test_execution_delay_ms > 0)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opts.test_execution_delay_ms));
      StatusOr<Vec> est = Execute(t.req, t.hash);
      if (!est.ok()) {
        // Nothing was released; return the epsilon to the tenant.
        ledger->Refund(t.req.tenant, t.req.eps);
        r.code = ReplyCode::kExecutionFailed;
        r.message = est.status().message();
      } else {
        r.code = ReplyCode::kOk;
        r.eps_charged = t.req.eps;
        r.estimate = std::move(est).value();
      }
    }
    {
      std::lock_guard<std::mutex> lock(co_mu);
      if (r.code == ReplyCode::kOk) {
        ++executions;
        if (t.cacheable) CacheInsert(t.key, r.estimate);
      }
      inflight.erase(t.key);
    }
    t.fly->Publish(std::move(r));
  }

  void WorkerLoop() {
    // Close() still delivers queued tasks, so every admitted request
    // gets a reply even across shutdown.
    while (std::optional<Task> t = queue->Pop()) ProcessTask(*t);
  }

  // -------------------------------------------------------- connections

  InvokeReply HandleInvoke(InvokeRequest req) {
    InvokeReply out;
    out.request_id = req.request_id;
    {
      std::lock_guard<std::mutex> lock(co_mu);
      ++received;
    }
    if (std::string err = Validate(req); !err.empty()) {
      std::lock_guard<std::mutex> lock(co_mu);
      ++refused_bad;
      out.code = ReplyCode::kBadRequest;
      out.message = std::move(err);
      return out;
    }
    // Advisory fast path: refuse before any queue slot or kernel is
    // involved.  (Public-state decision — Alg. 2 refusals leak nothing.)
    if (!ledger->CanCharge(req.tenant, req.eps)) {
      std::lock_guard<std::mutex> lock(co_mu);
      ++refused_budget;
      out.code = ReplyCode::kBudgetExhausted;
      out.message = "tenant budget exhausted";
      return out;
    }

    const uint64_t hash = RequestContentHash(req);
    const std::string key = CoalesceKey(req.tenant, hash);
    const bool can_coalesce = opts.coalesce && req.coalesce;
    std::shared_ptr<Inflight> fly;
    bool leader = true;
    if (can_coalesce) {
      std::lock_guard<std::mutex> lock(co_mu);
      if (const CachedAnswer* hit = CacheFind(key)) {
        ++coalesced;
        out.code = ReplyCode::kOk;
        out.coalesced = true;
        out.eps_charged = 0.0;  // replay of an already-charged answer
        out.estimate = hit->estimate;
        return out;
      }
      auto it = inflight.find(key);
      if (it != inflight.end()) {
        fly = it->second;
        leader = false;
      } else {
        fly = std::make_shared<Inflight>();
        inflight.emplace(key, fly);
      }
    } else {
      fly = std::make_shared<Inflight>();
    }

    if (leader) {
      Task task;
      task.req = req;
      task.hash = hash;
      task.key = key;
      task.cacheable = can_coalesce;
      task.fly = fly;
      task.enqueued = std::chrono::steady_clock::now();
      if (!queue->TryPush(std::move(task))) {
        InvokeReply refusal;
        refusal.request_id = req.request_id;
        refusal.code = stopping.load() ? ReplyCode::kShuttingDown
                                       : ReplyCode::kQueueFull;
        refusal.message = stopping.load() ? "server shutting down"
                                          : "request queue full";
        {
          std::lock_guard<std::mutex> lock(co_mu);
          ++refused_queue;
          if (can_coalesce) inflight.erase(key);
        }
        // Followers that already joined this entry get the same refusal.
        fly->Publish(refusal);
        refusal.request_id = req.request_id;
        return refusal;
      }
      std::lock_guard<std::mutex> lock(co_mu);
      ++admitted;
    }

    out = fly->Wait();
    out.request_id = req.request_id;
    if (!leader) {
      out.coalesced = true;
      if (out.code == ReplyCode::kOk) out.eps_charged = 0.0;
      std::lock_guard<std::mutex> lock(co_mu);
      ++coalesced;
    }
    return out;
  }

  StatsReply BuildStats() {
    StatsReply s;
    {
      std::lock_guard<std::mutex> lock(co_mu);
      s.received = received;
      s.admitted = admitted;
      s.refused_budget = refused_budget;
      s.refused_queue = refused_queue;
      s.refused_bad = refused_bad;
      s.executions = executions;
      s.coalesced = coalesced;
      s.refused_durability = refused_durability;
      s.refused_deadline = refused_deadline;
    }
    const OperatorCache::Stats cs = OperatorCache::Global().stats();
    s.cache_hits = cs.hits;
    s.cache_disk_hits = cs.disk_hits;
    const SearchStats ss = GetSearchStats();
    s.rewrite_searches = ss.searches;
    s.beam_expansions = ss.expansions;
    s.tree_hits = cs.tree_hits + cs.tree_disk_hits;
    s.disk_degraded = cs.disk_degraded ? 1 : 0;
    s.disk_io_errors = cs.disk_io_errors;
    s.disk_write_drops = cs.disk_write_drops;
    for (const std::string& name : tenant_order) {
      if (auto b = ledger->Balance(name))
        s.tenants.push_back({name, b->total, b->spent});
    }
    return s;
  }

  void ServeConnection(int fd) {
    for (;;) {
      MsgType type;
      std::vector<uint8_t> payload;
      Status st = ReadFrame(fd, &type, &payload);
      if (!st.ok()) break;  // clean close or poisoned stream: drop it
      if (type == MsgType::kInvoke) {
        InvokeRequest req;
        InvokeReply reply;
        if (!DecodeInvokeRequest(payload, &req)) {
          // The frame itself was intact (checksum passed), so the
          // stream is still synchronized; refuse just this request.
          std::lock_guard<std::mutex> lock(co_mu);
          ++received;
          ++refused_bad;
          reply.code = ReplyCode::kBadRequest;
          reply.message = "malformed invoke payload";
        } else {
          reply = HandleInvoke(std::move(req));
        }
        if (!WriteFrame(fd, MsgType::kInvokeReply, EncodeInvokeReply(reply))
                 .ok())
          break;
      } else if (type == MsgType::kStats) {
        if (!WriteFrame(fd, MsgType::kStatsReply,
                        EncodeStatsReply(BuildStats()))
                 .ok())
          break;
      } else if (type == MsgType::kShutdown) {
        (void)WriteFrame(fd, MsgType::kShutdownReply, {});
        SignalStop();
        break;
      } else {
        break;  // unknown message type: poisoned stream
      }
    }
    {
      std::lock_guard<std::mutex> lock(conn_mu);
      conn_fds.erase(fd);
    }
    net::CloseFd(fd);
  }

  void AcceptLoop() {
    while (!stopping.load()) {
      StatusOr<int> fd = listener->Accept(/*timeout_ms=*/100);
      if (!fd.ok()) {
        if (fd.status().code() == StatusCode::kUnavailable) continue;
        break;  // listener closed or fatal error
      }
      std::lock_guard<std::mutex> lock(conn_mu);
      if (stopping.load()) {
        net::CloseFd(*fd);
        break;
      }
      conn_fds.insert(*fd);
      const int cfd = *fd;
      conn_threads.emplace_back([this, cfd] { ServeConnection(cfd); });
    }
  }
};

Server::Server() : impl_(new Impl) {}

Server::~Server() { Stop(); }

StatusOr<std::unique_ptr<Server>> Server::Start(
    ServerOptions opts, std::vector<TenantSpec> tenants) {
  if (tenants.empty())
    return Status::InvalidArgument("a server needs at least one tenant");
  if (opts.socket_path.empty() || opts.ledger_dir.empty())
    return Status::InvalidArgument("socket_path and ledger_dir are required");

  // A client that disconnects while a reply is in flight must surface as
  // EPIPE through Status, never as a process-killing SIGPIPE.
  net::IgnoreSigpipe();

  std::unique_ptr<Server> server(new Server);
  Impl& im = *server->impl_;
  im.opts = opts;
  im.opts.workers = std::max<std::size_t>(1, im.opts.workers);
  im.opts.queue_capacity = std::max<std::size_t>(1, im.opts.queue_capacity);

  LedgerOptions lopts;
  lopts.fsync_each_charge = opts.fsync_ledger;
  lopts.checkpoint_every = opts.ledger_checkpoint_every;
  im.ledger = BudgetLedger::Open(opts.ledger_dir, lopts);
  if (im.ledger == nullptr)
    return Status::Internal("cannot open budget ledger in " +
                            opts.ledger_dir +
                            " (held by a live process, or I/O error)");

  for (TenantSpec& t : tenants) {
    if (t.name.empty() || im.tenants.count(t.name) != 0)
      return Status::InvalidArgument("empty or duplicate tenant name");
    // A returning tenant keeps its durable balances: CreateTenant only
    // registers genuinely new names (restart preserves spent exactly).
    if (!im.ledger->Balance(t.name).has_value() &&
        !im.ledger->CreateTenant(t.name, t.eps_total))
      return Status::Internal("cannot register tenant " + t.name);
    im.tenant_order.push_back(t.name);
    im.tenants.emplace(t.name,
                       Impl::Tenant{std::move(t.table), t.seed});
  }

  StatusOr<net::UnixListener> listener = net::UnixListener::Bind(
      opts.socket_path);
  if (!listener.ok()) return listener.status();
  im.listener.emplace(std::move(listener).value());

  im.queue =
      std::make_unique<BoundedQueue<Impl::Task>>(im.opts.queue_capacity);
  for (std::size_t i = 0; i < im.opts.workers; ++i)
    im.workers.emplace_back([&im] { im.WorkerLoop(); });
  im.acceptor = std::thread([&im] { im.AcceptLoop(); });
  return server;
}

void Server::Stop() {
  Impl& im = *impl_;
  im.SignalStop();
  {
    std::lock_guard<std::mutex> lock(im.stop_mu);
    if (im.joined) return;
    im.joined = true;
  }
  // AcceptLoop polls `stopping` every Accept timeout, so it exits on
  // its own; joining it BEFORE closing the listener keeps Close from
  // racing a concurrent Accept on the same fd.
  if (im.acceptor.joinable()) im.acceptor.join();
  if (im.listener.has_value()) im.listener->Close();
  // Drain: queued tasks still execute and publish, so every admitted
  // request's connection thread wakes with a real reply.
  if (im.queue != nullptr) im.queue->Close();
  for (std::thread& w : im.workers)
    if (w.joinable()) w.join();
  // Unblock connection threads parked in ReadFrame.
  {
    std::lock_guard<std::mutex> lock(im.conn_mu);
    for (int fd : im.conn_fds) ::shutdown(fd, SHUT_RDWR);
  }
  for (;;) {
    std::vector<std::thread> threads;
    {
      std::lock_guard<std::mutex> lock(im.conn_mu);
      threads.swap(im.conn_threads);
    }
    if (threads.empty()) break;
    for (std::thread& t : threads)
      if (t.joinable()) t.join();
  }
  if (im.ledger != nullptr) im.ledger->Checkpoint();
}

bool Server::stopped() const { return impl_->stopping.load(); }

void Server::WaitForShutdown() {
  std::unique_lock<std::mutex> lock(impl_->stop_mu);
  impl_->stop_cv.wait(lock, [&] { return impl_->stop_signaled; });
}

StatsReply Server::Stats() const { return impl_->BuildStats(); }

const std::string& Server::socket_path() const {
  return impl_->opts.socket_path;
}

BudgetLedger& Server::ledger() { return *impl_->ledger; }

#else  // _WIN32

struct Server::Impl {};
Server::Server() : impl_(new Impl) {}
Server::~Server() = default;
StatusOr<std::unique_ptr<Server>> Server::Start(ServerOptions,
                                                std::vector<TenantSpec>) {
  return Status::Unimplemented("serving requires AF_UNIX sockets");
}
void Server::Stop() {}
bool Server::stopped() const { return true; }
void Server::WaitForShutdown() {}
StatsReply Server::Stats() const { return {}; }
const std::string& Server::socket_path() const {
  static const std::string empty;
  return empty;
}
BudgetLedger& Server::ledger() {
  static BudgetLedger* none = nullptr;
  return *none;
}

#endif  // _WIN32

}  // namespace ektelo::serve
