// Durable per-tenant privacy-budget ledger: the Algorithm-2 accountant
// made persistent, so a serving daemon can restart without forgetting
// what any tenant has already spent.
//
// A BudgetLedger is a directory holding three files, reusing the
// store/ versioned-record discipline (little-endian framing, per-record
// checksums, torn-tail recovery, tmp+rename checkpoints):
//
//   ledger.data    append-only charge log.  Header {magic "EKLD",
//                  format_version}, then framed records {magic "EKLR",
//                  kind, name_len, name, amount, checksum}.  Kinds:
//                  create (amount = initial total), charge, refund,
//                  set_total.
//
//   ledger.ckpt    checkpointed balances: {magic "EKLC", format_version,
//                  covered_bytes, n_tenants, per-tenant {name_len, name,
//                  total, spent}, whole-file checksum}, replaced
//                  atomically (tmp + rename).  On open a valid
//                  checkpoint seeds the balances and only the log tail
//                  beyond covered_bytes is replayed; a missing/corrupt/
//                  stale checkpoint triggers a full replay.
//
//   ledger.lock    exclusive-create pid file.  Unlike the artifact
//                  store there is NO read-only degradation: a budget
//                  ledger with two live writers could double-release
//                  answers against one budget, so Open refuses (returns
//                  nullptr) while another live process holds the lock.
//                  A lock whose recorded owner is dead is reclaimed.
//
// Durability ordering is the privacy-critical contract: Charge appends
// and flushes the record BEFORE reporting success, and the caller must
// release the noisy answer only after Charge returns true.  A crash can
// therefore leave at most a torn trailing record for an answer that was
// NEVER released — recovery drops the torn tail, and the recovered
// `spent` is always >= the epsilon of every answer actually released.
// Replayed balances can only over-count (a flushed charge whose answer
// was lost in the crash), never under-count: the ledger fails safe.
//
// Charges use the same relative+absolute slack as the in-memory
// BudgetScope (budget.h), so an admission decision made against the
// ledger agrees with the kernel-side accountant to the last ulp.
//
// Thread-safe (one internal mutex); Charge/Refund for different tenants
// serialize, which is what keeps each tenant's spent deterministic for
// a deterministic request set (per-tenant sums are order-sensitive only
// in FP rounding; per-tenant request streams are ordered upstream).
#ifndef EKTELO_SERVE_LEDGER_H_
#define EKTELO_SERVE_LEDGER_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace ektelo::serve {

struct LedgerOptions {
  /// fsync the data file after every charge append.  Default off: the
  /// stdio flush already survives process death (the OS holds the
  /// bytes); fsync additionally survives power loss, at real latency
  /// cost per request.  EKTELO_SERVE_FSYNC=1 turns it on in the daemon.
  bool fsync_each_charge = false;
  /// Rewrite the balance checkpoint every this many appends (and on
  /// close).  Replay cost after a crash is bounded by this window.
  std::size_t checkpoint_every = 64;
};

struct TenantBudget {
  double total = 0.0;
  double spent = 0.0;
};

/// Outcome of a Charge.  Budget refusals and durability failures are
/// different animals: a refusal is a correct public decision (retry
/// after a top-up), an I/O error means the ledger could not make the
/// charge durable — the caller MUST fail the request closed (release
/// nothing), because budget durability, unlike the artifact cache,
/// cannot degrade.
enum class ChargeResult : uint8_t {
  kCharged = 0,  // durable on disk; the answer may be released
  kRefused = 1,  // unknown tenant / bad eps / insufficient budget
  kIoError = 2,  // append failed; nothing consumed, nothing released
};

class BudgetLedger {
 public:
  struct Stats {
    std::size_t tenants = 0;
    std::size_t charges = 0;    // successful durable charges (this open)
    std::size_t refunds = 0;
    std::size_t refusals = 0;   // Charge calls refused for budget
    std::size_t appends = 0;    // records appended (this open)
    std::size_t checkpoints = 0;
    std::size_t replayed_records = 0;  // records recovered on open
    std::size_t torn_drops = 0;        // torn/corrupt tail records dropped
    std::size_t io_errors = 0;         // failed appends/checkpoints
    bool recovered_from_checkpoint = false;
  };

  /// Opens (creating if needed) the ledger in `dir`.  Returns nullptr
  /// when the directory/files cannot be created OR another live process
  /// holds the writer lock — budget ledgers never open read-only.
  static std::unique_ptr<BudgetLedger> Open(const std::string& dir,
                                            const LedgerOptions& opts);

  /// Checkpoints balances and releases the writer lock.
  ~BudgetLedger();

  BudgetLedger(const BudgetLedger&) = delete;
  BudgetLedger& operator=(const BudgetLedger&) = delete;

  /// Registers a tenant with an initial budget (durable).  False if the
  /// tenant already exists (existing balances are never reset — use
  /// SetTotal to grow a budget) or on I/O failure.
  bool CreateTenant(const std::string& tenant, double total);

  /// Durably replaces a tenant's total budget (spent is untouched).
  bool SetTotal(const std::string& tenant, double total);

  /// Admission pre-check: would Charge(tenant, eps) succeed right now?
  /// Advisory only — the authoritative check is inside Charge.
  bool CanCharge(const std::string& tenant, double eps) const;

  /// Durably charges eps against the tenant: the record is appended and
  /// flushed BEFORE this returns kCharged, and only then may the caller
  /// release the answer.  kRefused (nothing consumed) when the tenant
  /// is unknown, eps is not positive and finite, or the remaining
  /// budget is insufficient; kIoError (nothing consumed, nothing
  /// durable) when the append itself fails.
  ChargeResult Charge(const std::string& tenant, double eps);

  /// Durably returns eps to the tenant (execution failed after its
  /// charge; no answer was released).  Spent clamps at zero.
  bool Refund(const std::string& tenant, double eps);

  std::optional<TenantBudget> Balance(const std::string& tenant) const;
  std::vector<std::string> Tenants() const;

  /// Atomically rewrites the balance checkpoint.
  void Checkpoint();

  Stats stats() const;
  const std::string& dir() const { return dir_; }

 private:
  explicit BudgetLedger(std::string dir);
  struct Impl;
  std::string dir_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ektelo::serve

#endif  // EKTELO_SERVE_LEDGER_H_
