// Client library for the serving daemon: a synchronous connection
// speaking the serve/protocol.h framing.  One Client is one socket;
// requests on a single Client serialize (request, then reply), so
// concurrency is expressed by opening more Clients — which is also how
// the daemon's admission control and coalescing are exercised.
// Thread-compatible, not thread-safe: share nothing, or lock around it.
#ifndef EKTELO_SERVE_CLIENT_H_
#define EKTELO_SERVE_CLIENT_H_

#include <string>

#include "serve/protocol.h"
#include "util/status.h"

namespace ektelo::serve {

class Client {
 public:
  /// Connects to a daemon's socket.
  static StatusOr<Client> Connect(const std::string& socket_path);

  Client(Client&& o) noexcept;
  Client& operator=(Client&& o) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// One plan invocation; blocks for the reply.  A non-OK status means
  /// the *connection* failed — refusals (budget, queue, bad request)
  /// come back as an InvokeReply with the corresponding code.
  StatusOr<InvokeReply> Invoke(const InvokeRequest& req);

  /// Server counters and per-tenant balances.
  StatusOr<StatsReply> Stats();

  /// Asks the daemon to shut down; resolves once it acknowledges.
  Status Shutdown();

 private:
  explicit Client(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace ektelo::serve

#endif  // EKTELO_SERVE_CLIENT_H_
