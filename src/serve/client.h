// Client library for the serving daemon: a synchronous connection
// speaking the serve/protocol.h framing.  One Client is one socket;
// requests on a single Client serialize (request, then reply), so
// concurrency is expressed by opening more Clients — which is also how
// the daemon's admission control and coalescing are exercised.
// Thread-compatible, not thread-safe: share nothing, or lock around it.
//
// Fault handling: every attempt is bounded (connect and read deadlines)
// and transport failures are retried with capped exponential backoff —
// but ONLY where a resend cannot double-spend.  A timed-out invoke may
// have executed and charged on the server, so Invoke retries only
// requests with `coalesce` set: an identical resend lands in the
// daemon's response cache or in-flight entry and is answered as a
// replay with eps_charged = 0 (idempotency by coalescing).  Stats is
// read-only and always retryable; Shutdown is never retried.  Backoff
// jitter is seeded (retry_seed) so tests replay identical schedules.
#ifndef EKTELO_SERVE_CLIENT_H_
#define EKTELO_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "serve/protocol.h"
#include "util/status.h"

namespace ektelo::serve {

struct ClientOptions {
  /// Bound on each connect attempt; 0 blocks indefinitely.
  int connect_timeout_ms = 5000;
  /// Bound on each request/reply round trip's socket reads and writes;
  /// expiry surfaces as kDeadlineExceeded.  0 blocks indefinitely.
  int read_timeout_ms = 30000;
  /// Retries after the first attempt (so max_retries = 2 means up to 3
  /// attempts).  Applies to transport failures only — refusal replies
  /// (budget, queue, bad request) are answers, not failures.
  int max_retries = 2;
  /// Backoff before retry k (0-based) is uniform in
  /// [d/2, d], d = min(backoff_cap_ms, backoff_base_ms << k).
  int backoff_base_ms = 20;
  int backoff_cap_ms = 1000;
  /// Seed for the deterministic backoff jitter stream.
  uint64_t retry_seed = 0;
};

class Client {
 public:
  /// Connects to a daemon's socket (one attempt, bounded by
  /// connect_timeout_ms; retries happen per-operation afterwards).
  static StatusOr<Client> Connect(const std::string& socket_path,
                                  ClientOptions opts = {});

  Client(Client&& o) noexcept;
  Client& operator=(Client&& o) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// One plan invocation; blocks for the reply.  A non-OK status means
  /// the *connection* failed — refusals (budget, queue, bad request)
  /// come back as an InvokeReply with the corresponding code.
  /// Transport failures are retried (reconnect + backoff) only when
  /// req.coalesce is set; kDeadlineExceeded after the last attempt
  /// means the request MAY still have executed server-side.
  StatusOr<InvokeReply> Invoke(const InvokeRequest& req);

  /// Server counters and per-tenant balances.  Read-only; retried.
  StatusOr<StatsReply> Stats();

  /// The daemon's metrics registry in Prometheus text exposition
  /// format.  Read-only; retried.
  StatusOr<std::string> StatsProm();

  /// The daemon's most recent request traces as Chrome trace_event
  /// JSON (load in Perfetto / chrome://tracing).  Empty traceEvents
  /// when the daemon runs without EKTELO_TRACE.  Read-only; retried.
  StatusOr<std::string> Trace();

  /// Asks the daemon to shut down; resolves once it acknowledges.
  /// Never retried (a resend could kill a freshly restarted daemon).
  Status Shutdown();

 private:
  Client(int fd, std::string path, ClientOptions opts)
      : fd_(fd), path_(std::move(path)), opts_(opts) {}

  /// Arms the per-attempt read/write deadlines on a fresh fd.
  Status ArmDeadlines(int fd) const;
  /// Shared retry loop for the read-only text endpoints (Prometheus
  /// stats, traces): empty request, one text-blob reply.
  StatusOr<std::string> TextRoundTrip(MsgType send_type, MsgType want_reply);
  /// Drops the (poisoned) connection and dials again.
  Status Reconnect();
  /// Sleeps the jittered backoff before 0-based retry `attempt`.
  void Backoff(int attempt) const;

  int fd_ = -1;
  std::string path_;
  ClientOptions opts_;
};

}  // namespace ektelo::serve

#endif  // EKTELO_SERVE_CLIENT_H_
