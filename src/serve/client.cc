#include "serve/client.h"

#include <utility>

#include "util/net.h"

namespace ektelo::serve {

namespace {

/// Request/reply round trip with reply-type checking.
Status RoundTrip(int fd, MsgType send_type,
                 const std::vector<uint8_t>& payload, MsgType want_reply,
                 std::vector<uint8_t>* reply_payload) {
  if (fd < 0) return Status::Internal("client is closed");
  Status s = WriteFrame(fd, send_type, payload);
  if (!s.ok()) return s;
  MsgType got;
  s = ReadFrame(fd, &got, reply_payload);
  if (!s.ok()) {
    if (s.code() == StatusCode::kUnavailable)
      return Status::Internal("server closed the connection");
    return s;
  }
  if (got != want_reply)
    return Status::Internal("unexpected reply message type");
  return Status::Ok();
}

}  // namespace

StatusOr<Client> Client::Connect(const std::string& socket_path) {
  StatusOr<int> fd = net::ConnectUnix(socket_path);
  if (!fd.ok()) return fd.status();
  return Client(*fd);
}

Client::Client(Client&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }

Client& Client::operator=(Client&& o) noexcept {
  if (this != &o) {
    if (fd_ >= 0) net::CloseFd(fd_);
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) net::CloseFd(fd_);
}

StatusOr<InvokeReply> Client::Invoke(const InvokeRequest& req) {
  std::vector<uint8_t> payload;
  Status s = RoundTrip(fd_, MsgType::kInvoke, EncodeInvokeRequest(req),
                       MsgType::kInvokeReply, &payload);
  if (!s.ok()) return s;
  InvokeReply reply;
  if (!DecodeInvokeReply(payload, &reply))
    return Status::Internal("malformed invoke reply");
  return reply;
}

StatusOr<StatsReply> Client::Stats() {
  std::vector<uint8_t> payload;
  Status s =
      RoundTrip(fd_, MsgType::kStats, {}, MsgType::kStatsReply, &payload);
  if (!s.ok()) return s;
  StatsReply stats;
  if (!DecodeStatsReply(payload, &stats))
    return Status::Internal("malformed stats reply");
  return stats;
}

Status Client::Shutdown() {
  std::vector<uint8_t> payload;
  return RoundTrip(fd_, MsgType::kShutdown, {}, MsgType::kShutdownReply,
                   &payload);
}

}  // namespace ektelo::serve
