#include "serve/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "util/net.h"
#include "util/rng.h"

namespace ektelo::serve {

namespace {

/// Transport failures worth a reconnect-and-resend.  Refusals never get
/// here (they are InvokeReply codes, not statuses); kInvalidArgument
/// (oversized frame we built ourselves) would fail identically again.
bool RetryableTransport(const Status& s) {
  switch (s.code()) {
    case StatusCode::kUnavailable:       // peer closed between frames
    case StatusCode::kInternal:          // torn frame, connect/socket error
    case StatusCode::kDeadlineExceeded:  // attempt deadline expired
      return true;
    default:
      return false;
  }
}

/// Request/reply round trip with reply-type checking.
Status RoundTrip(int fd, MsgType send_type,
                 const std::vector<uint8_t>& payload, MsgType want_reply,
                 std::vector<uint8_t>* reply_payload) {
  if (fd < 0) return Status::Internal("client is closed");
  Status s = WriteFrame(fd, send_type, payload);
  if (!s.ok()) return s;
  MsgType got;
  s = ReadFrame(fd, &got, reply_payload);
  if (!s.ok()) {
    if (s.code() == StatusCode::kUnavailable)
      return Status::Internal("server closed the connection");
    return s;
  }
  if (got != want_reply)
    return Status::Internal("unexpected reply message type");
  return Status::Ok();
}

}  // namespace

StatusOr<Client> Client::Connect(const std::string& socket_path,
                                 ClientOptions opts) {
  net::IgnoreSigpipe();
  StatusOr<int> fd = net::ConnectUnix(socket_path, opts.connect_timeout_ms);
  if (!fd.ok()) return fd.status();
  Client c(*fd, socket_path, opts);
  if (Status s = c.ArmDeadlines(*fd); !s.ok()) return s;
  return c;
}

Status Client::ArmDeadlines(int fd) const {
  if (opts_.read_timeout_ms <= 0) return Status::Ok();
  EK_RETURN_IF_ERROR(net::SetRecvTimeout(fd, opts_.read_timeout_ms));
  return net::SetSendTimeout(fd, opts_.read_timeout_ms);
}

Status Client::Reconnect() {
  if (fd_ >= 0) net::CloseFd(fd_);
  fd_ = -1;
  StatusOr<int> fd = net::ConnectUnix(path_, opts_.connect_timeout_ms);
  if (!fd.ok()) return fd.status();
  if (Status s = ArmDeadlines(*fd); !s.ok()) {
    net::CloseFd(*fd);
    return s;
  }
  fd_ = *fd;
  return Status::Ok();
}

void Client::Backoff(int attempt) const {
  int delay = opts_.backoff_base_ms;
  for (int i = 0; i < attempt && delay < opts_.backoff_cap_ms; ++i)
    delay *= 2;
  delay = std::max(1, std::min(delay, opts_.backoff_cap_ms));
  // Uniform in [delay/2, delay]; the stream is a pure function of
  // (retry_seed, attempt) so a replayed failure backs off identically.
  const uint64_t r = SplitMix64(opts_.retry_seed ^ (uint64_t(attempt) + 1));
  const int jittered = delay / 2 + int(r % uint64_t(delay - delay / 2 + 1));
  std::this_thread::sleep_for(std::chrono::milliseconds(jittered));
}

Client::Client(Client&& o) noexcept
    : fd_(o.fd_), path_(std::move(o.path_)), opts_(o.opts_) {
  o.fd_ = -1;
}

Client& Client::operator=(Client&& o) noexcept {
  if (this != &o) {
    if (fd_ >= 0) net::CloseFd(fd_);
    fd_ = o.fd_;
    path_ = std::move(o.path_);
    opts_ = o.opts_;
    o.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) net::CloseFd(fd_);
}

StatusOr<InvokeReply> Client::Invoke(const InvokeRequest& req) {
  // A resend is only safe when the daemon can recognize it as the same
  // request: coalescable invokes replay from the response cache (or join
  // the in-flight execution) with eps_charged = 0, so a retry after an
  // ambiguous failure cannot double-spend.  Non-coalescable invokes get
  // exactly one attempt.
  const int retries = req.coalesce ? std::max(0, opts_.max_retries) : 0;
  Status last = Status::Ok();
  for (int attempt = 0; attempt <= retries; ++attempt) {
    if (attempt > 0) {
      Backoff(attempt - 1);
      if (Status s = Reconnect(); !s.ok()) {
        last = s;
        continue;
      }
    }
    std::vector<uint8_t> payload;
    last = RoundTrip(fd_, MsgType::kInvoke, EncodeInvokeRequest(req),
                     MsgType::kInvokeReply, &payload);
    if (last.ok()) {
      InvokeReply reply;
      if (!DecodeInvokeReply(payload, &reply))
        return Status::Internal("malformed invoke reply");
      return reply;
    }
    if (!RetryableTransport(last)) break;
  }
  return last;
}

StatusOr<StatsReply> Client::Stats() {
  Status last = Status::Ok();
  for (int attempt = 0; attempt <= std::max(0, opts_.max_retries);
       ++attempt) {
    if (attempt > 0) {
      Backoff(attempt - 1);
      if (Status s = Reconnect(); !s.ok()) {
        last = s;
        continue;
      }
    }
    std::vector<uint8_t> payload;
    last = RoundTrip(fd_, MsgType::kStats, {}, MsgType::kStatsReply,
                     &payload);
    if (last.ok()) {
      StatsReply stats;
      if (!DecodeStatsReply(payload, &stats))
        return Status::Internal("malformed stats reply");
      return stats;
    }
    if (!RetryableTransport(last)) break;
  }
  return last;
}

StatusOr<std::string> Client::TextRoundTrip(MsgType send_type,
                                            MsgType want_reply) {
  Status last = Status::Ok();
  for (int attempt = 0; attempt <= std::max(0, opts_.max_retries);
       ++attempt) {
    if (attempt > 0) {
      Backoff(attempt - 1);
      if (Status s = Reconnect(); !s.ok()) {
        last = s;
        continue;
      }
    }
    std::vector<uint8_t> payload;
    last = RoundTrip(fd_, send_type, {}, want_reply, &payload);
    if (last.ok()) {
      std::string text;
      if (!DecodeTextReply(payload, &text))
        return Status::Internal("malformed text reply");
      return text;
    }
    if (!RetryableTransport(last)) break;
  }
  return last;
}

StatusOr<std::string> Client::StatsProm() {
  return TextRoundTrip(MsgType::kStatsProm, MsgType::kStatsPromReply);
}

StatusOr<std::string> Client::Trace() {
  return TextRoundTrip(MsgType::kTrace, MsgType::kTraceReply);
}

Status Client::Shutdown() {
  std::vector<uint8_t> payload;
  return RoundTrip(fd_, MsgType::kShutdown, {}, MsgType::kShutdownReply,
                   &payload);
}

}  // namespace ektelo::serve
