#include "serve/ledger.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <unordered_map>
#include <utility>

#ifndef _WIN32
#include <signal.h>
#include <unistd.h>
#endif

#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/io.h"
#include "store/serialize.h"

namespace ektelo::serve {

namespace io = ::ektelo::store::io;

namespace {

obs::Counter& LedgerAppends() {
  static obs::Counter& c = obs::Registry::Global().GetCounter(
      "ektelo_ledger_appends", "Budget-ledger records appended durably");
  return c;
}
obs::Counter& LedgerCheckpoints() {
  static obs::Counter& c = obs::Registry::Global().GetCounter(
      "ektelo_ledger_checkpoints", "Budget-ledger balance checkpoints written");
  return c;
}
obs::Counter& LedgerIoErrors() {
  static obs::Counter& c = obs::Registry::Global().GetCounter(
      "ektelo_ledger_io_errors", "Budget-ledger append/checkpoint I/O errors");
  return c;
}
obs::Histogram& LedgerAppendSeconds() {
  static obs::Histogram& h = obs::Registry::Global().GetHistogram(
      "ektelo_ledger_io_seconds", "Wall time of one durable ledger I/O",
      "op=\"append\"");
  return h;
}
obs::Histogram& LedgerCheckpointSeconds() {
  static obs::Histogram& h = obs::Registry::Global().GetHistogram(
      "ektelo_ledger_io_seconds", "Wall time of one durable ledger I/O",
      "op=\"checkpoint\"");
  return h;
}

namespace fs = std::filesystem;

constexpr uint32_t kLedgerMagic = 0x444C4B45u;  // "EKLD" little-endian
constexpr uint32_t kRecordMagic = 0x524C4B45u;  // "EKLR"
constexpr uint32_t kCkptMagic = 0x434C4B45u;    // "EKLC"

constexpr std::size_t kHeaderBytes = 8;  // magic, format version
constexpr std::size_t kMaxNameLen = 4096;

// Same slack as BudgetScope (kernel/budget.h): admission decisions made
// here agree with the kernel-side accountant to the last ulp.
constexpr double kSlack = 1e-9;

enum RecordKind : uint8_t {
  kCreate = 1,    // amount = initial total, spent = 0
  kCharge = 2,    // spent += amount
  kRefund = 3,    // spent = max(0, spent - amount)
  kSetTotal = 4,  // total = amount
};

bool WithinBudget(double spent, double eps, double total) {
  return spent + eps <= total * (1.0 + kSlack) + kSlack;
}

/// One framed log record: magic, then a checksummed body.
std::vector<uint8_t> EncodeRecord(uint8_t kind, const std::string& name,
                                  double amount) {
  store::ByteWriter body;
  body.U8(kind);
  body.U64(name.size());
  body.Raw(reinterpret_cast<const uint8_t*>(name.data()), name.size());
  body.F64(amount);
  store::ByteWriter w;
  w.U32(kRecordMagic);
  w.U64(store::Checksum64(body.bytes()));
  w.Raw(body.bytes().data(), body.bytes().size());
  return w.Take();
}

struct DecodedRecord {
  uint8_t kind = 0;
  std::string name;
  double amount = 0.0;
  std::size_t frame_bytes = 0;  // total bytes this record consumed
};

/// Parses one record at the reader's position.  False on anything torn,
/// corrupt, or malformed — the caller stops scanning there.
bool DecodeRecord(store::ByteReader* r, DecodedRecord* out) {
  uint32_t magic;
  uint64_t checksum;
  const std::size_t before = r->remaining();
  if (!r->U32(&magic) || magic != kRecordMagic || !r->U64(&checksum))
    return false;
  // Re-checksum the body exactly as written: kind, name_len, name, amount.
  uint8_t kind;
  uint64_t name_len;
  if (!r->U8(&kind) || !r->U64(&name_len) || name_len > kMaxNameLen ||
      r->remaining() < name_len + 8)
    return false;
  store::ByteWriter body;
  body.U8(kind);
  body.U64(name_len);
  std::string name(name_len, '\0');
  for (uint64_t i = 0; i < name_len; ++i) {
    uint8_t b;
    if (!r->U8(&b)) return false;
    name[i] = char(b);
    body.U8(b);
  }
  double amount;
  if (!r->F64(&amount)) return false;
  body.F64(amount);
  if (store::Checksum64(body.bytes()) != checksum) return false;
  if (kind < kCreate || kind > kSetTotal) return false;
  out->kind = kind;
  out->name = std::move(name);
  out->amount = amount;
  out->frame_bytes = before - r->remaining();
  return true;
}

}  // namespace

struct BudgetLedger::Impl {
  LedgerOptions opts;
  std::string data_path, ckpt_path, lock_path;

  mutable std::mutex mu;
  std::FILE* f = nullptr;  // data file, "r+b"; guarded by mu
  bool locked = false;
  uint64_t append_off = kHeaderBytes;
  std::size_t appends_since_ckpt = 0;
  std::unordered_map<std::string, TenantBudget> balances;
  Stats st;
  bool open_ok = false;

  ~Impl() {
    if (f != nullptr) std::fclose(f);
    if (locked) std::remove(lock_path.c_str());
  }

  /// Exclusive-create pid lock, reclaiming from a dead owner (same
  /// protocol as the artifact store, minus the read-only fallback).
  bool AcquireLock() {
#ifdef _WIN32
    // No portable owner-liveness probe; single-writer discipline is the
    // deployment's responsibility here (matching the store's contract).
    locked = true;
    return true;
#else
    std::FILE* lf = std::fopen(lock_path.c_str(), "wx");
    if (lf == nullptr) {
      if (std::FILE* old = std::fopen(lock_path.c_str(), "rb")) {
        long pid = 0;
        const int fields = std::fscanf(old, "%ld", &pid);
        std::fclose(old);
        const bool stale = fields == 1 && pid > 0 &&
                           kill(pid_t(pid), 0) != 0 && errno == ESRCH;
        if (stale) {
          std::remove(lock_path.c_str());
          lf = std::fopen(lock_path.c_str(), "wx");
        }
      }
    }
    if (lf == nullptr) return false;
    std::fprintf(lf, "%ld\n", long(getpid()));
    std::fflush(lf);
    std::fclose(lf);
    locked = true;
    return true;
#endif
  }

  // ---- recovery (open path; no lock needed yet) ----

  /// Loads the checkpoint into `balances`.  Returns the number of data
  /// bytes it covers, or 0 when absent/corrupt/oversized (full replay).
  uint64_t LoadCheckpoint(uint64_t data_size) {
    std::vector<uint8_t> bytes;
    if (!io::ReadWholeFile(ckpt_path, &bytes, "ledger.ckpt") ||
        bytes.size() < 8 + 8)
      return 0;
    // Trailing whole-file checksum covers everything before it.
    store::ByteReader tail(bytes.data() + bytes.size() - 8, 8);
    uint64_t want;
    if (!tail.U64(&want) ||
        store::Checksum64(bytes.data(), bytes.size() - 8) != want)
      return 0;
    store::ByteReader r(bytes.data(), bytes.size() - 8);
    uint32_t magic, version;
    uint64_t covered, n;
    if (!r.U32(&magic) || magic != kCkptMagic || !r.U32(&version) ||
        version != store::kFormatVersion || !r.U64(&covered) ||
        covered < kHeaderBytes || covered > data_size || !r.U64(&n))
      return 0;
    std::unordered_map<std::string, TenantBudget> loaded;
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t len;
      if (!r.U64(&len) || len > kMaxNameLen || r.remaining() < len + 16)
        return 0;
      std::string name(len, '\0');
      for (uint64_t j = 0; j < len; ++j) {
        uint8_t b;
        if (!r.U8(&b)) return 0;
        name[j] = char(b);
      }
      TenantBudget tb;
      if (!r.F64(&tb.total) || !r.F64(&tb.spent)) return 0;
      loaded.emplace(std::move(name), tb);
    }
    if (r.remaining() != 0) return 0;
    balances = std::move(loaded);
    st.recovered_from_checkpoint = true;
    return covered;
  }

  /// Applies one decoded record to the balances.  Mirrors the live
  /// mutation paths exactly, so replay(log) == the sequence of applied
  /// operations, bit for bit.
  void Apply(const DecodedRecord& rec) {
    switch (rec.kind) {
      case kCreate:
        balances.emplace(rec.name, TenantBudget{rec.amount, 0.0});
        break;
      case kCharge: {
        auto it = balances.find(rec.name);
        if (it != balances.end()) it->second.spent += rec.amount;
        break;
      }
      case kRefund: {
        auto it = balances.find(rec.name);
        if (it != balances.end())
          it->second.spent = std::max(0.0, it->second.spent - rec.amount);
        break;
      }
      case kSetTotal: {
        auto it = balances.find(rec.name);
        if (it != balances.end()) it->second.total = rec.amount;
        break;
      }
      default:
        break;
    }
  }

  /// Replays log records in [from, data.size()), stopping at the first
  /// torn/corrupt record; `append_off` regresses to the last good byte
  /// so the next append overwrites the torn tail in place.
  void ReplayTail(const std::vector<uint8_t>& data, uint64_t from) {
    uint64_t off = from;
    store::ByteReader r(data.data() + from, data.size() - from);
    DecodedRecord rec;
    while (r.remaining() > 0 && DecodeRecord(&r, &rec)) {
      Apply(rec);
      ++st.replayed_records;
      off += rec.frame_bytes;
    }
    if (off < data.size()) ++st.torn_drops;
    append_off = off;
  }

  // ---- durable append (mu held) ----

  bool Append(uint8_t kind, const std::string& name, double amount) {
    if (f == nullptr || name.size() > kMaxNameLen) return false;
    obs::Span span("ledger.append", "ledger", &LedgerAppendSeconds());
    span.Attr("epsilon", amount);
#ifdef _WIN32
    if (_fseeki64(f, int64_t(append_off), SEEK_SET) != 0) return false;
#else
    if (fseeko(f, off_t(append_off), SEEK_SET) != 0) return false;
#endif
    const std::vector<uint8_t> frame = EncodeRecord(kind, name, amount);
    // A failed (possibly partial) write leaves append_off where it was:
    // the NEXT append seeks back and overwrites the torn bytes, and a
    // reopen drops them as a torn tail.  Either way the frame that
    // failed here was never reported durable, so nothing was released
    // against it.
    if (!io::Write(f, frame.data(), frame.size(), "ledger.append") ||
        !io::Flush(f, "ledger.flush")) {
      ++st.io_errors;
      LedgerIoErrors().Inc();
      return false;
    }
    if (opts.fsync_each_charge && !io::Fsync(f, "ledger.fsync")) {
      ++st.io_errors;
      LedgerIoErrors().Inc();
      return false;
    }
    append_off += frame.size();
    ++st.appends;
    LedgerAppends().Inc();
    ++appends_since_ckpt;
    return true;
  }

  /// Checkpoint cadence.  Must run AFTER the caller applied the
  /// just-appended record to `balances`: a checkpoint taken inside
  /// Append would stamp `covered = append_off` (including the new
  /// record's bytes) over a balance snapshot that does not yet hold its
  /// mutation, and recovery would silently skip the record — an
  /// under-count of spent budget, the one failure the ledger exists to
  /// rule out (the crash matrix catches exactly this).
  void MaybeCheckpoint() {
    if (appends_since_ckpt >= opts.checkpoint_every) WriteCheckpoint();
  }

  /// Atomically rewrites the balance checkpoint (mu held).
  void WriteCheckpoint() {
    obs::Span span("ledger.checkpoint", "ledger", &LedgerCheckpointSeconds());
    store::ByteWriter w;
    w.U32(kCkptMagic);
    w.U32(store::kFormatVersion);
    w.U64(append_off);
    w.U64(balances.size());
    for (const auto& [name, tb] : balances) {
      w.U64(name.size());
      w.Raw(reinterpret_cast<const uint8_t*>(name.data()), name.size());
      w.F64(tb.total);
      w.F64(tb.spent);
    }
    w.U64(store::Checksum64(w.bytes()));
    if (io::AtomicWriteFile(ckpt_path, w.bytes(), "ledger.ckpt")) {
      ++st.checkpoints;
      LedgerCheckpoints().Inc();
      appends_since_ckpt = 0;
    } else {
      // The log already holds every record a checkpoint would cover;
      // losing the rewrite only lengthens the next replay.
      ++st.io_errors;
      LedgerIoErrors().Inc();
    }
  }
};

BudgetLedger::BudgetLedger(std::string dir)
    : dir_(std::move(dir)), impl_(new Impl) {}

BudgetLedger::~BudgetLedger() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->f != nullptr) impl_->WriteCheckpoint();
}

std::unique_ptr<BudgetLedger> BudgetLedger::Open(const std::string& dir,
                                                 const LedgerOptions& opts) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return nullptr;

  std::unique_ptr<BudgetLedger> ledger(new BudgetLedger(dir));
  Impl& im = *ledger->impl_;
  im.opts = opts;
  if (im.opts.checkpoint_every == 0) im.opts.checkpoint_every = 1;
  im.data_path = dir + "/ledger.data";
  im.ckpt_path = dir + "/ledger.ckpt";
  im.lock_path = dir + "/ledger.lock";

  // A live writer elsewhere means refuse outright: two accountants on
  // one ledger could double-release answers against a single budget.
  if (!im.AcquireLock()) return nullptr;

  std::vector<uint8_t> data;
  bool fresh = !io::ReadWholeFile(im.data_path, &data, "ledger.data");
  if (!fresh) {
    store::ByteReader r(data);
    uint32_t magic = 0, version = 0;
    if (data.size() < kHeaderBytes || !r.U32(&magic) ||
        magic != kLedgerMagic || !r.U32(&version) ||
        version != store::kFormatVersion) {
      // Unlike the artifact store, a garbage ledger is NOT silently
      // replaced — budgets are not a cache.  An empty/short file (a
      // crash before the header flush) is the one safe exception.
      if (!data.empty()) return nullptr;
      fresh = true;
    }
  }

  if (fresh) {
    store::ByteWriter w;
    w.U32(kLedgerMagic);
    w.U32(store::kFormatVersion);
    if (!io::AtomicWriteFile(im.data_path, w.bytes(), "ledger.create"))
      return nullptr;
    data = w.Take();
  } else {
    const uint64_t covered = im.LoadCheckpoint(uint64_t(data.size()));
    im.ReplayTail(data, covered >= kHeaderBytes ? covered : kHeaderBytes);
  }
  if (fresh) im.append_off = kHeaderBytes;

  im.f = io::Open(im.data_path, "r+b", "ledger.data.open");
  if (im.f == nullptr) return nullptr;
  im.open_ok = true;
  return ledger;
}

bool BudgetLedger::CreateTenant(const std::string& tenant, double total) {
  if (!std::isfinite(total) || total < 0.0 || tenant.empty()) return false;
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->balances.count(tenant) != 0) return false;
  if (!impl_->Append(kCreate, tenant, total)) return false;
  impl_->balances.emplace(tenant, TenantBudget{total, 0.0});
  impl_->MaybeCheckpoint();
  return true;
}

bool BudgetLedger::SetTotal(const std::string& tenant, double total) {
  if (!std::isfinite(total) || total < 0.0) return false;
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->balances.find(tenant);
  if (it == impl_->balances.end()) return false;
  if (!impl_->Append(kSetTotal, tenant, total)) return false;
  it->second.total = total;
  impl_->MaybeCheckpoint();
  return true;
}

bool BudgetLedger::CanCharge(const std::string& tenant, double eps) const {
  if (!std::isfinite(eps) || eps <= 0.0) return false;
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->balances.find(tenant);
  return it != impl_->balances.end() &&
         WithinBudget(it->second.spent, eps, it->second.total);
}

ChargeResult BudgetLedger::Charge(const std::string& tenant, double eps) {
  if (!std::isfinite(eps) || eps <= 0.0) return ChargeResult::kRefused;
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->balances.find(tenant);
  if (it == impl_->balances.end() ||
      !WithinBudget(it->second.spent, eps, it->second.total)) {
    ++impl_->st.refusals;
    return ChargeResult::kRefused;
  }
  // Durable BEFORE the balance moves: the caller releases the answer
  // only after we return kCharged, so a crash between append and
  // release over-counts (safe), never under-counts.  An append failure
  // is NOT a budget refusal — the caller must surface it as a
  // durability error, not "budget exhausted".
  if (!impl_->Append(kCharge, tenant, eps)) return ChargeResult::kIoError;
  it->second.spent += eps;
  ++impl_->st.charges;
  impl_->MaybeCheckpoint();
  return ChargeResult::kCharged;
}

bool BudgetLedger::Refund(const std::string& tenant, double eps) {
  if (!std::isfinite(eps) || eps <= 0.0) return false;
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->balances.find(tenant);
  if (it == impl_->balances.end()) return false;
  if (!impl_->Append(kRefund, tenant, eps)) return false;
  it->second.spent = std::max(0.0, it->second.spent - eps);
  ++impl_->st.refunds;
  impl_->MaybeCheckpoint();
  return true;
}

std::optional<TenantBudget> BudgetLedger::Balance(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->balances.find(tenant);
  if (it == impl_->balances.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> BudgetLedger::Tenants() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<std::string> names;
  names.reserve(impl_->balances.size());
  for (const auto& [name, tb] : impl_->balances) names.push_back(name);
  return names;
}

void BudgetLedger::Checkpoint() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->WriteCheckpoint();
}

BudgetLedger::Stats BudgetLedger::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  Stats s = impl_->st;
  s.tenants = impl_->balances.size();
  return s;
}

}  // namespace ektelo::serve
