#include "serve/torture.h"

#ifndef _WIN32

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "serve/ledger.h"
#include "store/artifact_store.h"
#include "store/write_behind.h"
#include "util/failpoint.h"

namespace ektelo::serve::torture {

namespace fs = std::filesystem;

namespace {

// Deterministic artifact identities and contents: the verifier recomputes
// these, so any surviving record must read back bit-exact.
store::ArtifactKey Key(std::size_t k) {
  return {0xA11F00ull + k, /*kind=*/1};
}

std::vector<uint8_t> Payload(std::size_t k) {
  std::vector<uint8_t> p(64 + (k % 7) * 16);
  for (std::size_t i = 0; i < p.size(); ++i)
    p[i] = uint8_t((k * 37 + i * 11) & 0xFF);
  return p;
}

constexpr uint64_t kHashVersion = 7;

}  // namespace

bool RunWorkload(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return false;

  LedgerOptions lopts;
  lopts.checkpoint_every = 4;  // small window: crashes land mid-cadence
  std::unique_ptr<BudgetLedger> ledger =
      BudgetLedger::Open(dir + "/ledger", lopts);

  // The shadow release log is raw O_APPEND write()s so it survives
  // std::_Exit exactly like the ledger's own appends must: a release is
  // recorded here only AFTER Charge returned kCharged.
  const int shadow =
      ::open((dir + "/shadow.log").c_str(), O_WRONLY | O_APPEND | O_CREAT,
             0644);

  if (ledger != nullptr) {
    if (!ledger->Balance("alpha").has_value())
      ledger->CreateTenant("alpha", 4.0);
    if (!ledger->Balance("beta").has_value())
      ledger->CreateTenant("beta", 3.0);
  }

  store::DiskStoreOptions sopts;
  sopts.max_bytes = std::size_t{1} << 20;
  sopts.flush_every_puts = 5;
  sopts.hash_version = kHashVersion;
  sopts.admission = 0;  // doorkeeper off: byte-identical run-to-run
  std::unique_ptr<store::DiskArtifactStore> st =
      store::DiskArtifactStore::Open(dir + "/store", sopts);

  for (std::size_t k = 1; k <= 12; ++k) {
    // Epsilons are num/1024 — exact in binary, so the verifier's sums
    // compare exactly against the ledger's.
    const int num = int(k % 5) + 1;
    const double eps = double(num) / 1024.0;
    const char* tenant = (k % 2 == 1) ? "alpha" : "beta";
    if (ledger != nullptr &&
        ledger->Charge(tenant, eps) == ChargeResult::kCharged) {
      if (k % 4 == 0) {
        // Simulated execution failure: refund instead of releasing.
        ledger->Refund(tenant, eps);
      } else if (shadow >= 0) {
        char line[64];
        const int n =
            std::snprintf(line, sizeof(line), "%s %d\n", tenant, num);
        if (n > 0) (void)!::write(shadow, line, std::size_t(n));
      }
    }
    if (st != nullptr) {
      st->Put(Key(k), Payload(k));
      if (k % 3 == 0) {
        std::vector<uint8_t> got;
        st->Get(Key(k - 1), &got);
      }
      if (k == 6) st->Flush();
      if (k == 9) st->Compact();
    }
  }

  if (st != nullptr) {
    // Spills through the write-behind path: one FIFO consumer and an
    // immediate Drain keep the I/O order deterministic.
    store::WriteBehindQueue wb(8);
    for (std::size_t j = 101; j <= 103; ++j)
      wb.Enqueue([&st, j] { st->Put(Key(j), Payload(j)); });
    wb.Drain();
  }

  if (ledger != nullptr) ledger->Checkpoint();
  if (st != nullptr) st->Flush();
  if (shadow >= 0) ::close(shadow);
  return true;
}

bool VerifyAfterCrash(const std::string& dir, std::string* why) {
  auto fail = [&](std::string m) {
    if (why != nullptr) *why = std::move(m);
    return false;
  };

  // Ground truth: every answer the workload actually handed out.
  std::map<std::string, long> released;  // tenant -> eps numerator sum
  {
    std::ifstream in(dir + "/shadow.log");
    std::string tenant;
    long num = 0;
    while (in >> tenant >> num) released[tenant] += num;
  }

  {
    std::unique_ptr<BudgetLedger> ledger =
        BudgetLedger::Open(dir + "/ledger", LedgerOptions{});
    if (ledger == nullptr)
      return fail("ledger refused to reopen after crash");
    for (const auto& [tenant, num] : released) {
      const std::optional<TenantBudget> b = ledger->Balance(tenant);
      if (!b.has_value())
        return fail("tenant " + tenant + " vanished from ledger");
      // Both sides are sums of num/1024 terms (exact in binary); the
      // 1e-9 is pure paranoia, not FP slack the invariant needs.
      const double rel = double(num) / 1024.0;
      if (b->spent + 1e-9 < rel)
        return fail("ledger UNDER-COUNTS " + tenant + ": spent=" +
                    std::to_string(b->spent) + " < released=" +
                    std::to_string(rel));
      if (b->spent > b->total + 1e-9)
        return fail("ledger spent exceeds total for " + tenant);
    }
  }

  {
    store::DiskStoreOptions sopts;
    sopts.hash_version = kHashVersion;
    sopts.admission = 0;
    std::unique_ptr<store::DiskArtifactStore> st =
        store::DiskArtifactStore::Open(dir + "/store", sopts);
    if (st == nullptr) return fail("store refused to reopen after crash");
    auto intact = [&](std::size_t k) {
      std::vector<uint8_t> got;
      // A miss is a cleanly truncated tail (or an eviction) — allowed.
      if (!st->Get(Key(k), &got)) return true;
      return got == Payload(k);
    };
    for (std::size_t k = 1; k <= 12; ++k)
      if (!intact(k))
        return fail("store artifact " + std::to_string(k) +
                    " corrupt after crash");
    for (std::size_t k = 101; k <= 103; ++k)
      if (!intact(k))
        return fail("store artifact " + std::to_string(k) +
                    " (write-behind) corrupt after crash");
  }
  return true;
}

CrashMatrixResult RunCrashMatrix(const CrashMatrixOptions& opts) {
  CrashMatrixResult res;
#if !EKTELO_FAILPOINTS_ENABLED
  res.violations.push_back(
      "failpoints compiled out (-DEKTELO_FAILPOINTS=OFF); matrix cannot run");
  (void)opts;
  return res;
#else
  failpoint::Registry& reg = failpoint::Registry::Global();
  reg.Reset();
  std::error_code ec;
  fs::remove_all(opts.dir, ec);

  // Discovery: trace one clean run; the trace IS the site enumeration —
  // no hand-maintained list, new instrumented call sites are covered the
  // moment they execute.
  reg.StartTrace();
  const bool clean_ok = RunWorkload(opts.dir);
  const std::vector<std::string> trace = reg.StopTrace();
  reg.Reset();
  if (!clean_ok || trace.empty()) {
    res.violations.push_back("clean discovery run failed or hit no sites");
    return res;
  }
  res.total_ops = trace.size();

  std::vector<std::size_t> points;  // 1-based global hit indices
  {
    std::set<std::string> seen;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      if (!opts.quick || seen.insert(trace[i]).second) points.push_back(i + 1);
    }
  }
  if (opts.max_crashes > 0 && points.size() > opts.max_crashes)
    points.resize(opts.max_crashes);

  std::set<std::string> covered;
  for (std::size_t k : points) {
    fs::remove_all(opts.dir, ec);
    const pid_t pid = ::fork();
    if (pid < 0) {
      res.violations.push_back("fork failed");
      break;
    }
    if (pid == 0) {
      // Child: pristine registry, one wildcard crash rule against the
      // global hit counter, then the same deterministic workload.
      reg.Reset();
      char spec[32];
      std::snprintf(spec, sizeof(spec), "crash@%llu",
                    (unsigned long long)k);
      reg.Arm("*", spec);
      RunWorkload(opts.dir);
      std::_Exit(7);  // sentinel: the armed crash point never fired
    }
    int wstatus = 0;
    (void)::waitpid(pid, &wstatus, 0);
    const std::string& site = trace[k - 1];
    ++res.crashes;
    covered.insert(site);
    if (!WIFEXITED(wstatus) ||
        WEXITSTATUS(wstatus) != failpoint::kCrashExitCode) {
      res.violations.push_back(
          "op " + std::to_string(k) + " (" + site + "): child exited " +
          std::to_string(WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1) +
          " instead of the simulated crash (nondeterministic workload?)");
      continue;
    }
    std::string why;
    if (!VerifyAfterCrash(opts.dir, &why))
      res.violations.push_back("op " + std::to_string(k) + " (" + site +
                               "): " + why);
  }
  res.sites_covered.assign(covered.begin(), covered.end());
  fs::remove_all(opts.dir, ec);
  return res;
#endif  // EKTELO_FAILPOINTS_ENABLED
}

}  // namespace ektelo::serve::torture

#else  // _WIN32

namespace ektelo::serve::torture {

bool RunWorkload(const std::string&) { return false; }
bool VerifyAfterCrash(const std::string&, std::string* why) {
  if (why != nullptr) *why = "torture harness requires POSIX";
  return false;
}
CrashMatrixResult RunCrashMatrix(const CrashMatrixOptions&) {
  CrashMatrixResult res;
  res.violations.push_back("torture harness requires POSIX fork()");
  return res;
}

}  // namespace ektelo::serve::torture

#endif  // _WIN32
