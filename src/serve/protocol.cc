#include "serve/protocol.h"

#include "store/serialize.h"
#include "util/net.h"

namespace ektelo::serve {

namespace {

constexpr std::size_t kMaxNameLen = 4096;
constexpr std::size_t kMaxRanges = std::size_t{1} << 22;
constexpr std::size_t kMaxDims = 64;

void PutString(const std::string& s, store::ByteWriter* w) {
  w->U64(s.size());
  w->Raw(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

bool GetString(store::ByteReader* r, std::string* s,
               std::size_t max_len = kMaxNameLen) {
  uint64_t len;
  if (!r->U64(&len) || len > max_len || r->remaining() < len) return false;
  s->resize(std::size_t(len));
  for (std::size_t i = 0; i < len; ++i) {
    uint8_t b;
    if (!r->U8(&b)) return false;
    (*s)[i] = char(b);
  }
  return true;
}

}  // namespace

std::vector<uint8_t> EncodeInvokeRequest(const InvokeRequest& req) {
  store::ByteWriter w;
  w.U64(req.request_id);
  PutString(req.tenant, &w);
  PutString(req.plan, &w);
  w.F64(req.eps);
  w.U64(req.dims.size());
  for (std::size_t d : req.dims) w.U64(d);
  w.U64(req.ranges.size());
  for (const RangeQuery& q : req.ranges) {
    w.U64(q.lo);
    w.U64(q.hi);
  }
  w.F64(req.known_total);
  w.U64(req.stripe_dim);
  w.U8(req.mode);
  w.U8(req.coalesce ? 1 : 0);
  return w.Take();
}

bool DecodeInvokeRequest(const std::vector<uint8_t>& bytes,
                         InvokeRequest* req) {
  store::ByteReader r(bytes);
  uint64_t n;
  if (!r.U64(&req->request_id) || !GetString(&r, &req->tenant) ||
      !GetString(&r, &req->plan) || !r.F64(&req->eps) || !r.U64(&n) ||
      n > kMaxDims)
    return false;
  req->dims.resize(std::size_t(n));
  for (auto& d : req->dims) {
    uint64_t v;
    if (!r.U64(&v)) return false;
    d = std::size_t(v);
  }
  if (!r.U64(&n) || n > kMaxRanges || r.remaining() / 16 < n) return false;
  req->ranges.resize(std::size_t(n));
  for (auto& q : req->ranges) {
    uint64_t lo, hi;
    if (!r.U64(&lo) || !r.U64(&hi)) return false;
    q.lo = std::size_t(lo);
    q.hi = std::size_t(hi);
  }
  uint64_t stripe;
  uint8_t coalesce;
  if (!r.F64(&req->known_total) || !r.U64(&stripe) || !r.U8(&req->mode) ||
      !r.U8(&coalesce) || r.remaining() != 0)
    return false;
  req->stripe_dim = std::size_t(stripe);
  req->coalesce = coalesce != 0;
  return true;
}

std::vector<uint8_t> EncodeInvokeReply(const InvokeReply& reply) {
  store::ByteWriter w;
  w.U64(reply.request_id);
  w.U8(uint8_t(reply.code));
  PutString(reply.message, &w);
  w.U8(reply.coalesced ? 1 : 0);
  w.F64(reply.eps_charged);
  store::SerializeVec(reply.estimate, &w);
  return w.Take();
}

bool DecodeInvokeReply(const std::vector<uint8_t>& bytes,
                       InvokeReply* reply) {
  store::ByteReader r(bytes);
  uint8_t code, coalesced;
  if (!r.U64(&reply->request_id) || !r.U8(&code) ||
      !GetString(&r, &reply->message, kMaxNameLen * 4) || !r.U8(&coalesced) ||
      !r.F64(&reply->eps_charged) ||
      !store::DeserializeVec(&r, &reply->estimate) || r.remaining() != 0 ||
      code > uint8_t(ReplyCode::kDeadlineExceeded))
    return false;
  reply->code = ReplyCode(code);
  reply->coalesced = coalesced != 0;
  return true;
}

std::vector<uint8_t> EncodeStatsReply(const StatsReply& stats) {
  store::ByteWriter w;
  w.U64(stats.received);
  w.U64(stats.admitted);
  w.U64(stats.refused_budget);
  w.U64(stats.refused_queue);
  w.U64(stats.refused_bad);
  w.U64(stats.executions);
  w.U64(stats.coalesced);
  w.U64(stats.cache_disk_hits);
  w.U64(stats.cache_hits);
  w.U64(stats.rewrite_searches);
  w.U64(stats.beam_expansions);
  w.U64(stats.tree_hits);
  w.U64(stats.refused_durability);
  w.U64(stats.refused_deadline);
  w.U64(stats.disk_degraded);
  w.U64(stats.disk_io_errors);
  w.U64(stats.disk_write_drops);
  w.U64(stats.tenants.size());
  for (const auto& t : stats.tenants) {
    PutString(t.name, &w);
    w.F64(t.total);
    w.F64(t.spent);
  }
  return w.Take();
}

bool DecodeStatsReply(const std::vector<uint8_t>& bytes, StatsReply* stats) {
  store::ByteReader r(bytes);
  uint64_t n;
  if (!r.U64(&stats->received) || !r.U64(&stats->admitted) ||
      !r.U64(&stats->refused_budget) || !r.U64(&stats->refused_queue) ||
      !r.U64(&stats->refused_bad) || !r.U64(&stats->executions) ||
      !r.U64(&stats->coalesced) || !r.U64(&stats->cache_disk_hits) ||
      !r.U64(&stats->cache_hits) || !r.U64(&stats->rewrite_searches) ||
      !r.U64(&stats->beam_expansions) || !r.U64(&stats->tree_hits) ||
      !r.U64(&stats->refused_durability) || !r.U64(&stats->refused_deadline) ||
      !r.U64(&stats->disk_degraded) || !r.U64(&stats->disk_io_errors) ||
      !r.U64(&stats->disk_write_drops) ||
      !r.U64(&n) || r.remaining() / 24 < n)
    return false;
  stats->tenants.resize(std::size_t(n));
  for (auto& t : stats->tenants)
    if (!GetString(&r, &t.name) || !r.F64(&t.total) || !r.F64(&t.spent))
      return false;
  return r.remaining() == 0;
}

std::vector<uint8_t> EncodeTextReply(const std::string& text) {
  store::ByteWriter w;
  PutString(text, &w);
  return w.Take();
}

bool DecodeTextReply(const std::vector<uint8_t>& bytes, std::string* text) {
  store::ByteReader r(bytes);
  // The blob is bounded by the frame payload cap, not the name cap.
  return GetString(&r, text, kMaxPayloadBytes) && r.remaining() == 0;
}

Status WriteFrame(int fd, MsgType type, const std::vector<uint8_t>& payload) {
  if (payload.size() > kMaxPayloadBytes)
    return Status::InvalidArgument("frame payload too large");
  store::ByteWriter w;
  w.U32(kFrameMagic);
  w.U8(uint8_t(type));
  w.U32(uint32_t(payload.size()));
  w.Raw(payload.data(), payload.size());
  w.U64(store::Checksum64(payload));
  return net::SendAll(fd, w.bytes().data(), w.bytes().size());
}

namespace {
/// A clean EOF after the header is a torn frame, not a clean close.
Status MidFrame(Status s) {
  if (!s.ok() && s.code() == StatusCode::kUnavailable)
    return Status::Internal("connection closed mid-frame");
  return s;
}
}  // namespace

Status ReadFrame(int fd, MsgType* type, std::vector<uint8_t>* payload) {
  uint8_t header[9];
  // kUnavailable here IS the clean peer-close path (zero bytes read).
  Status s = net::RecvAll(fd, header, sizeof(header));
  if (!s.ok()) return s;
  store::ByteReader r(header, sizeof(header));
  uint32_t magic = 0, len = 0;
  uint8_t t = 0;
  r.U32(&magic);
  r.U8(&t);
  r.U32(&len);
  if (magic != kFrameMagic)
    return Status::InvalidArgument("bad frame magic");
  if (len > kMaxPayloadBytes)
    return Status::InvalidArgument("frame payload too large");
  payload->resize(len);
  if (len > 0) {
    s = MidFrame(net::RecvAll(fd, payload->data(), len));
    if (!s.ok()) return s;
  }
  uint8_t sumbuf[8];
  s = MidFrame(net::RecvAll(fd, sumbuf, sizeof(sumbuf)));
  if (!s.ok()) return s;
  store::ByteReader sr(sumbuf, sizeof(sumbuf));
  uint64_t want = 0;
  sr.U64(&want);
  if (store::Checksum64(*payload) != want)
    return Status::InvalidArgument("frame checksum mismatch");
  *type = MsgType(t);
  return Status::Ok();
}

}  // namespace ektelo::serve
