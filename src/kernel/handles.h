// Typed client handles over protected sources.
//
// The kernel's raw surface is SourceId — an opaque integer that can name a
// table or a vector, with misuse (vector op on a table source) detected
// only at run time inside the kernel.  ProtectedTable and ProtectedVector
// are thin, move-only views (ProtectedKernel* + SourceId) that lift the
// table/vector distinction to the type level: a ProtectedVector simply has
// no Where(), so the whole class of CheckVector/CheckTable client errors
// becomes a compile error.
//
// Handles own no private state — copies of the (kernel, id) pair — so
// deriving a new source returns a new handle and leaves the parent usable.
// They are move-only to keep data lineage explicit in client code.
//
// Measurements thread a BudgetScope: the scope is charged first (local,
// public arithmetic — a plan stage that overspends its allowance fails
// before touching the kernel), then the kernel request runs under
// Algorithm 2; if the kernel refuses, the scope charge is refunded.
#ifndef EKTELO_KERNEL_HANDLES_H_
#define EKTELO_KERNEL_HANDLES_H_

#include <functional>
#include <string>
#include <vector>

#include "kernel/budget.h"
#include "kernel/kernel.h"

namespace ektelo {

/// A protected count-vector source (the x of Sec. 4).
class ProtectedVector {
 public:
  /// Wraps an existing vector source; InvalidArgument if `id` is not one.
  static StatusOr<ProtectedVector> Wrap(ProtectedKernel* kernel, SourceId id);
  /// Precondition: `id` is a vector source of `kernel` (checked).
  ProtectedVector(ProtectedKernel* kernel, SourceId id);

  ProtectedVector(ProtectedVector&&) = default;
  ProtectedVector& operator=(ProtectedVector&&) = default;
  ProtectedVector(const ProtectedVector&) = delete;
  ProtectedVector& operator=(const ProtectedVector&) = delete;

  ProtectedKernel* kernel() const { return kernel_; }
  SourceId id() const { return id_; }
  /// Length (public: derived from domain metadata).
  std::size_t size() const;
  /// Stability w.r.t. the parent source.
  double stability() const;

  // ---- Private operators: vector -> vector ----
  StatusOr<ProtectedVector> ReduceByPartition(const Partition& p) const;
  StatusOr<ProtectedVector> Transform(LinOpPtr m) const;
  StatusOr<std::vector<ProtectedVector>> SplitByPartition(
      const Partition& p) const;

  // ---- Private -> Public operators (scope-metered measurements) ----
  /// M x + Lap(sens(M)/eps)^rows, charging `eps` against `scope` and the
  /// kernel's tracker.
  StatusOr<Vec> Laplace(const LinOp& m, double eps, BudgetScope& scope) const;
  /// Exponential mechanism over workload rows (MWEM's query selection).
  StatusOr<std::size_t> WorstApprox(const LinOp& workload, const Vec& xhat,
                                    double eps, BudgetScope& scope,
                                    double score_sensitivity = 1.0) const;
  /// Exponential mechanism over arbitrary vector scores.
  StatusOr<std::size_t> ChooseByScores(
      const std::vector<std::function<double(const Vec&)>>& scorers,
      double eps, double sensitivity, BudgetScope& scope) const;

 private:
  ProtectedKernel* kernel_;
  SourceId id_;
};

/// A protected relational-table source.
class ProtectedTable {
 public:
  /// The kernel's root table.
  static ProtectedTable Root(ProtectedKernel* kernel);
  /// Wraps an existing table source; InvalidArgument if `id` is not one.
  static StatusOr<ProtectedTable> Wrap(ProtectedKernel* kernel, SourceId id);

  ProtectedTable(ProtectedTable&&) = default;
  ProtectedTable& operator=(ProtectedTable&&) = default;
  ProtectedTable(const ProtectedTable&) = delete;
  ProtectedTable& operator=(const ProtectedTable&) = delete;

  ProtectedKernel* kernel() const { return kernel_; }
  SourceId id() const { return id_; }
  /// Schema (public: domains are data-independent).
  const Schema& schema() const;

  // ---- Private operators: table -> table ----
  StatusOr<ProtectedTable> Where(const Predicate& p) const;
  StatusOr<ProtectedTable> Select(const std::vector<std::string>& attrs) const;
  StatusOr<ProtectedTable> GroupBy(const std::vector<std::string>& attrs) const;

  // ---- Private operators: table -> vector ----
  /// T-Vectorize: count vector over the full domain.
  StatusOr<ProtectedVector> Vectorize() const;

  // ---- Private -> Public operators ----
  /// |D| + Lap(1/eps), charging `eps` against `scope`.
  StatusOr<double> NoisyCount(double eps, BudgetScope& scope) const;
  /// Exponential mechanism over table scores (PrivBayes' structure
  /// selection).
  StatusOr<std::size_t> ChooseByScores(
      const std::vector<std::function<double(const Table&)>>& scorers,
      double eps, double sensitivity, BudgetScope& scope) const;

 private:
  ProtectedTable(ProtectedKernel* kernel, SourceId id);

  ProtectedKernel* kernel_;
  SourceId id_;
};

}  // namespace ektelo

#endif  // EKTELO_KERNEL_HANDLES_H_
