#include "kernel/kernel.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ektelo {

namespace {
// Relative slack for floating-point budget comparisons: a plan that spends
// exactly eps_total in k pieces must not be rejected for rounding error.
constexpr double kBudgetSlack = 1e-9;

// Domain-separation salt between "seed used for this source's own noise
// draws" and "seed used to derive children": a source that both answers
// measurements and spawns children must not correlate the two.
constexpr uint64_t kNoiseSalt = 0xD1B54A32D192ED03ull;

uint64_t NoiseSeed(uint64_t stream_seed) {
  return SplitMix64(stream_seed ^ kNoiseSalt);
}

uint64_t ChildSeed(uint64_t parent_seed, uint64_t child_index) {
  // SplitMix64 over the golden-ratio-strided (parent, index) pair — the
  // keyed-fork derivation of Rng::Fork(key), inlined on raw seeds so a
  // child's lineage seed is a pure function of the path from the root.
  return SplitMix64(parent_seed +
                    0x9E3779B97F4A7C15ull * (child_index + 1));
}
}  // namespace

ProtectedKernel::ProtectedKernel(Table table, double eps_total, uint64_t seed)
    : eps_total_(eps_total) {
  EK_CHECK_GT(eps_total, 0.0);
  Node root;
  root.is_table = true;
  root.table = std::move(table);
  root.stability = 1.0;
  root.stream_seed = SplitMix64(seed);
  root.stream = std::make_unique<NoiseStream>(NoiseSeed(root.stream_seed));
  nodes_.push_back(std::move(root));
}

SourceId ProtectedKernel::AddChild(SourceId parent, Node n) {
  Node& p = nodes_[parent];
  n.parent = parent;
  n.stream_seed = ChildSeed(p.stream_seed, p.child_seq++);
  n.stream = std::make_unique<NoiseStream>(NoiseSeed(n.stream_seed));
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

bool ProtectedKernel::IsTableSourceLocked(SourceId id) const {
  EK_CHECK_LT(id, nodes_.size());
  return nodes_[id].is_table && !nodes_[id].is_partition_dummy;
}

bool ProtectedKernel::IsVectorSourceLocked(SourceId id) const {
  EK_CHECK_LT(id, nodes_.size());
  return !nodes_[id].is_table && !nodes_[id].is_partition_dummy;
}

bool ProtectedKernel::IsTableSource(SourceId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return IsTableSourceLocked(id);
}

bool ProtectedKernel::IsVectorSource(SourceId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return IsVectorSourceLocked(id);
}

const Schema& ProtectedKernel::SourceSchema(SourceId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  EK_CHECK(IsTableSourceLocked(id));
  return nodes_[id].table->schema();
}

std::size_t ProtectedKernel::VectorSize(SourceId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  EK_CHECK(IsVectorSourceLocked(id));
  return nodes_[id].vector.size();
}

double ProtectedKernel::SourceStability(SourceId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  EK_CHECK_LT(id, nodes_.size());
  return nodes_[id].stability;
}

Status ProtectedKernel::CheckVector(SourceId id) const {
  if (id >= nodes_.size())
    return Status::NotFound("unknown source id");
  if (!IsVectorSourceLocked(id))
    return Status::InvalidArgument("source is not a vector");
  return Status::Ok();
}

Status ProtectedKernel::CheckTable(SourceId id) const {
  if (id >= nodes_.size())
    return Status::NotFound("unknown source id");
  if (!IsTableSourceLocked(id))
    return Status::InvalidArgument("source is not a table");
  return Status::Ok();
}

// ----------------------------------------------------------- Algorithm 2

Status ProtectedKernel::Request(SourceId sv, double eps) {
  if (eps < 0.0) return Status::InvalidArgument("negative budget request");
  // RequestImpl only mutates budgets after the root check has passed, so a
  // failed request leaves all bookkeeping untouched.  The caller holds
  // mu_ across the whole walk, which is what makes the charge atomic
  // under concurrency: no other request can interleave between the root
  // admission check and the downstream budget commits.
  return RequestImpl(sv, eps);
}

Status ProtectedKernel::RequestImpl(SourceId sv, double eps) {
  Node& n = nodes_[sv];
  if (!n.parent.has_value()) {
    // Root: the only place budget can actually be refused.
    if (n.budget + eps > eps_total_ * (1.0 + kBudgetSlack) + kBudgetSlack) {
      return Status::BudgetExhausted(
          "request of " + std::to_string(eps) + " exceeds remaining " +
          std::to_string(eps_total_ - n.budget));
    }
    n.budget += eps;
    return Status::Ok();
  }
  Node& p = nodes_[*n.parent];
  if (p.is_partition_dummy) {
    // Parallel composition: the partition variable absorbs only the
    // *increase* of the max over its children (Algorithm 2, lines 4-8).
    const double r = std::max(n.budget + eps - p.budget, 0.0);
    EK_CHECK(p.parent.has_value());
    Status st = RequestImpl(*p.parent, r * p.stability);
    if (!st.ok()) return st;
    p.budget += r;
    n.budget += eps;
    return Status::Ok();
  }
  // Sequential composition scaled by this source's stability (line 10).
  Status st = RequestImpl(*n.parent, n.stability * eps);
  if (!st.ok()) return st;
  n.budget += eps;
  return Status::Ok();
}

// ------------------------------------------------ table transformations

// Transformations stage the derived table/vector *outside* the kernel
// lock: existing nodes are immutable and the deque keeps their references
// stable, so only the validity check and the final AddChild need mu_.

StatusOr<SourceId> ProtectedKernel::TWhere(SourceId src, const Predicate& p) {
  const Node* parent = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    EK_RETURN_IF_ERROR(CheckTable(src));
    parent = &nodes_[src];
  }
  Node n;
  n.is_table = true;
  n.stability = 1.0;
  n.table = parent->table->Where(p);
  std::lock_guard<std::mutex> lock(mu_);
  return AddChild(src, std::move(n));
}

StatusOr<SourceId> ProtectedKernel::TSelect(
    SourceId src, const std::vector<std::string>& attrs) {
  const Node* parent = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    EK_RETURN_IF_ERROR(CheckTable(src));
    for (const auto& a : attrs) {
      if (!nodes_[src].table->schema().HasAttr(a))
        return Status::InvalidArgument("unknown attribute: " + a);
    }
    parent = &nodes_[src];
  }
  Node n;
  n.is_table = true;
  n.stability = 1.0;
  n.table = parent->table->Select(attrs);
  std::lock_guard<std::mutex> lock(mu_);
  return AddChild(src, std::move(n));
}

StatusOr<SourceId> ProtectedKernel::TGroupBy(
    SourceId src, const std::vector<std::string>& attrs) {
  const Node* parent = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    EK_RETURN_IF_ERROR(CheckTable(src));
    parent = &nodes_[src];
  }
  Node n;
  n.is_table = true;
  n.stability = 2.0;  // PINQ: one record moves at most two groups
  n.table = parent->table->GroupBy(attrs);
  std::lock_guard<std::mutex> lock(mu_);
  return AddChild(src, std::move(n));
}

StatusOr<SourceId> ProtectedKernel::TVectorize(SourceId src) {
  const Node* parent = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    EK_RETURN_IF_ERROR(CheckTable(src));
    parent = &nodes_[src];
  }
  Node n;
  n.is_table = false;
  n.stability = 1.0;
  n.vector = parent->table->Vectorize();
  std::lock_guard<std::mutex> lock(mu_);
  return AddChild(src, std::move(n));
}

// ----------------------------------------------- vector transformations

StatusOr<SourceId> ProtectedKernel::VReduceByPartition(SourceId src,
                                                       const Partition& p) {
  const Node* parent = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    EK_RETURN_IF_ERROR(CheckVector(src));
    if (p.num_cells() != nodes_[src].vector.size())
      return Status::InvalidArgument("partition size mismatch");
    parent = &nodes_[src];
  }
  Node n;
  n.is_table = false;
  n.stability = 1.0;  // P is 0/1 with exactly one 1 per column
  n.vector = p.ReduceMatrix().Matvec(parent->vector);
  std::lock_guard<std::mutex> lock(mu_);
  return AddChild(src, std::move(n));
}

StatusOr<SourceId> ProtectedKernel::VTransform(SourceId src, LinOpPtr m) {
  const Node* parent = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    EK_RETURN_IF_ERROR(CheckVector(src));
    if (m->cols() != nodes_[src].vector.size())
      return Status::InvalidArgument("transform shape mismatch");
    parent = &nodes_[src];
  }
  Node n;
  n.is_table = false;
  n.stability = m->SensitivityL1();  // L1->L1 operator norm
  n.vector = m->Apply(parent->vector);
  std::lock_guard<std::mutex> lock(mu_);
  return AddChild(src, std::move(n));
}

StatusOr<std::vector<SourceId>> ProtectedKernel::VSplitByPartition(
    SourceId src, const Partition& p) {
  const Node* parent = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    EK_RETURN_IF_ERROR(CheckVector(src));
    if (p.num_cells() != nodes_[src].vector.size())
      return Status::InvalidArgument("partition size mismatch");
    parent = &nodes_[src];
  }
  const Vec& x = parent->vector;
  auto groups = p.Groups();
  std::vector<Node> staged;
  staged.reserve(groups.size());
  for (const auto& cells : groups) {
    Node child;
    child.is_table = false;
    child.stability = 1.0;
    child.vector.reserve(cells.size());
    for (std::size_t c : cells) child.vector.push_back(x[c]);
    staged.push_back(std::move(child));
  }
  // One lock for the whole family: the dummy partition variable of
  // Sec. 4.4 plus all children, so their lineage indices are contiguous
  // and the split is atomic in the source table.
  std::lock_guard<std::mutex> lock(mu_);
  Node dummy;
  dummy.is_table = false;
  dummy.is_partition_dummy = true;
  dummy.stability = 1.0;
  SourceId dummy_id = AddChild(src, std::move(dummy));
  std::vector<SourceId> children;
  children.reserve(staged.size());
  for (Node& child : staged)
    children.push_back(AddChild(dummy_id, std::move(child)));
  return children;
}

// ------------------------------------------------------- measurements

StatusOr<Vec> ProtectedKernel::VectorLaplace(SourceId src, const LinOp& m,
                                             double eps) {
  if (eps <= 0.0) return Status::InvalidArgument("eps must be positive");
  // Sensitivity is computed from the query matrix; Algorithm 2 applies the
  // upstream transformation stabilities on top.  Computed before taking
  // the kernel lock — it can trigger a materialization of m.
  const double sens = m.SensitivityL1();
  const double scale = sens / eps;
  Node* node = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    EK_RETURN_IF_ERROR(CheckVector(src));
    if (m.cols() != nodes_[src].vector.size())
      return Status::InvalidArgument("measurement shape mismatch");
    EK_RETURN_IF_ERROR(Request(src, eps));
    transcript_.push_back({src, "VectorLaplace[" + m.DebugName() + "]", eps,
                           scale});
    node = &nodes_[src];
  }
  // The heavy apply runs unlocked: node data is immutable and the deque
  // keeps `node` stable while other branches derive sources.
  Vec y = m.Apply(node->vector);
  if (scale > 0.0) {
    std::lock_guard<std::mutex> lock(node->stream->mu);
    for (double& v : y) v += node->stream->rng.Laplace(scale);
  }
  return y;
}

StatusOr<double> ProtectedKernel::NoisyCount(SourceId src, double eps) {
  if (eps <= 0.0) return Status::InvalidArgument("eps must be positive");
  Node* node = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    EK_RETURN_IF_ERROR(CheckTable(src));
    EK_RETURN_IF_ERROR(Request(src, eps));
    transcript_.push_back({src, "NoisyCount", eps, 1.0 / eps});
    node = &nodes_[src];
  }
  std::lock_guard<std::mutex> lock(node->stream->mu);
  return static_cast<double>(node->table->NumRows()) +
         node->stream->rng.Laplace(1.0 / eps);
}

StatusOr<std::size_t> ProtectedKernel::WorstApprox(SourceId src,
                                                   const LinOp& workload,
                                                   const Vec& xhat,
                                                   double eps,
                                                   double score_sensitivity) {
  if (eps <= 0.0) return Status::InvalidArgument("eps must be positive");
  if (score_sensitivity <= 0.0)
    return Status::InvalidArgument("score sensitivity must be positive");
  Node* node = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    EK_RETURN_IF_ERROR(CheckVector(src));
    if (workload.cols() != nodes_[src].vector.size() ||
        xhat.size() != nodes_[src].vector.size())
      return Status::InvalidArgument("workload/estimate shape mismatch");
    EK_RETURN_IF_ERROR(Request(src, eps));
    transcript_.push_back({src, "WorstApprox", eps, 0.0});
    node = &nodes_[src];
  }
  Vec truth = workload.Apply(node->vector);
  Vec approx = workload.Apply(xhat);
  std::vector<double> scores(truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i)
    scores[i] = std::abs(truth[i] - approx[i]) / score_sensitivity;
  std::lock_guard<std::mutex> lock(node->stream->mu);
  return node->stream->rng.ExponentialMechanism(scores, eps);
}

StatusOr<std::size_t> ProtectedKernel::ChooseByVectorScores(
    SourceId src, const std::vector<std::function<double(const Vec&)>>& f,
    double eps, double sensitivity) {
  if (eps <= 0.0 || sensitivity <= 0.0)
    return Status::InvalidArgument("eps and sensitivity must be positive");
  if (f.empty()) return Status::InvalidArgument("no candidates");
  Node* node = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    EK_RETURN_IF_ERROR(CheckVector(src));
    EK_RETURN_IF_ERROR(Request(src, eps));
    transcript_.push_back({src, "ChooseByVectorScores", eps, 0.0});
    node = &nodes_[src];
  }
  std::vector<double> scores(f.size());
  for (std::size_t i = 0; i < f.size(); ++i)
    scores[i] = f[i](node->vector) / sensitivity;
  std::lock_guard<std::mutex> lock(node->stream->mu);
  return node->stream->rng.ExponentialMechanism(scores, eps);
}

StatusOr<std::size_t> ProtectedKernel::ChooseByTableScores(
    SourceId src, const std::vector<std::function<double(const Table&)>>& f,
    double eps, double sensitivity) {
  if (eps <= 0.0 || sensitivity <= 0.0)
    return Status::InvalidArgument("eps and sensitivity must be positive");
  if (f.empty()) return Status::InvalidArgument("no candidates");
  Node* node = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    EK_RETURN_IF_ERROR(CheckTable(src));
    EK_RETURN_IF_ERROR(Request(src, eps));
    transcript_.push_back({src, "ChooseByTableScores", eps, 0.0});
    node = &nodes_[src];
  }
  std::vector<double> scores(f.size());
  for (std::size_t i = 0; i < f.size(); ++i)
    scores[i] = f[i](*node->table) / sensitivity;
  std::lock_guard<std::mutex> lock(node->stream->mu);
  return node->stream->rng.ExponentialMechanism(scores, eps);
}

}  // namespace ektelo
