#include "kernel/kernel.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ektelo {

namespace {
// Relative slack for floating-point budget comparisons: a plan that spends
// exactly eps_total in k pieces must not be rejected for rounding error.
constexpr double kBudgetSlack = 1e-9;
}  // namespace

ProtectedKernel::ProtectedKernel(Table table, double eps_total, uint64_t seed)
    : eps_total_(eps_total), rng_(seed) {
  EK_CHECK_GT(eps_total, 0.0);
  Node root;
  root.is_table = true;
  root.table = std::move(table);
  root.stability = 1.0;
  AddNode(std::move(root));
}

SourceId ProtectedKernel::AddNode(Node n) {
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

bool ProtectedKernel::IsTableSource(SourceId id) const {
  EK_CHECK_LT(id, nodes_.size());
  return nodes_[id].is_table && !nodes_[id].is_partition_dummy;
}

bool ProtectedKernel::IsVectorSource(SourceId id) const {
  EK_CHECK_LT(id, nodes_.size());
  return !nodes_[id].is_table && !nodes_[id].is_partition_dummy;
}

const Schema& ProtectedKernel::SourceSchema(SourceId id) const {
  EK_CHECK(IsTableSource(id));
  return nodes_[id].table->schema();
}

std::size_t ProtectedKernel::VectorSize(SourceId id) const {
  EK_CHECK(IsVectorSource(id));
  return nodes_[id].vector.size();
}

double ProtectedKernel::SourceStability(SourceId id) const {
  EK_CHECK_LT(id, nodes_.size());
  return nodes_[id].stability;
}

Status ProtectedKernel::CheckVector(SourceId id) const {
  if (id >= nodes_.size())
    return Status::NotFound("unknown source id");
  if (!IsVectorSource(id))
    return Status::InvalidArgument("source is not a vector");
  return Status::Ok();
}

Status ProtectedKernel::CheckTable(SourceId id) const {
  if (id >= nodes_.size())
    return Status::NotFound("unknown source id");
  if (!IsTableSource(id))
    return Status::InvalidArgument("source is not a table");
  return Status::Ok();
}

// ----------------------------------------------------------- Algorithm 2

Status ProtectedKernel::Request(SourceId sv, double eps) {
  if (eps < 0.0) return Status::InvalidArgument("negative budget request");
  // RequestImpl only mutates budgets after the root check has passed, so a
  // failed request leaves all bookkeeping untouched.
  return RequestImpl(sv, eps);
}

Status ProtectedKernel::RequestImpl(SourceId sv, double eps) {
  Node& n = nodes_[sv];
  if (!n.parent.has_value()) {
    // Root: the only place budget can actually be refused.
    if (n.budget + eps > eps_total_ * (1.0 + kBudgetSlack) + kBudgetSlack) {
      return Status::BudgetExhausted(
          "request of " + std::to_string(eps) + " exceeds remaining " +
          std::to_string(eps_total_ - n.budget));
    }
    n.budget += eps;
    return Status::Ok();
  }
  Node& p = nodes_[*n.parent];
  if (p.is_partition_dummy) {
    // Parallel composition: the partition variable absorbs only the
    // *increase* of the max over its children (Algorithm 2, lines 4-8).
    const double r = std::max(n.budget + eps - p.budget, 0.0);
    EK_CHECK(p.parent.has_value());
    Status st = RequestImpl(*p.parent, r * p.stability);
    if (!st.ok()) return st;
    p.budget += r;
    n.budget += eps;
    return Status::Ok();
  }
  // Sequential composition scaled by this source's stability (line 10).
  Status st = RequestImpl(*n.parent, n.stability * eps);
  if (!st.ok()) return st;
  n.budget += eps;
  return Status::Ok();
}

// ------------------------------------------------ table transformations

StatusOr<SourceId> ProtectedKernel::TWhere(SourceId src, const Predicate& p) {
  EK_RETURN_IF_ERROR(CheckTable(src));
  Node n;
  n.is_table = true;
  n.parent = src;
  n.stability = 1.0;
  n.table = nodes_[src].table->Where(p);
  return AddNode(std::move(n));
}

StatusOr<SourceId> ProtectedKernel::TSelect(
    SourceId src, const std::vector<std::string>& attrs) {
  EK_RETURN_IF_ERROR(CheckTable(src));
  for (const auto& a : attrs) {
    if (!nodes_[src].table->schema().HasAttr(a))
      return Status::InvalidArgument("unknown attribute: " + a);
  }
  Node n;
  n.is_table = true;
  n.parent = src;
  n.stability = 1.0;
  n.table = nodes_[src].table->Select(attrs);
  return AddNode(std::move(n));
}

StatusOr<SourceId> ProtectedKernel::TGroupBy(
    SourceId src, const std::vector<std::string>& attrs) {
  EK_RETURN_IF_ERROR(CheckTable(src));
  Node n;
  n.is_table = true;
  n.parent = src;
  n.stability = 2.0;  // PINQ: one record moves at most two groups
  n.table = nodes_[src].table->GroupBy(attrs);
  return AddNode(std::move(n));
}

StatusOr<SourceId> ProtectedKernel::TVectorize(SourceId src) {
  EK_RETURN_IF_ERROR(CheckTable(src));
  Node n;
  n.is_table = false;
  n.parent = src;
  n.stability = 1.0;
  n.vector = nodes_[src].table->Vectorize();
  return AddNode(std::move(n));
}

// ----------------------------------------------- vector transformations

StatusOr<SourceId> ProtectedKernel::VReduceByPartition(SourceId src,
                                                       const Partition& p) {
  EK_RETURN_IF_ERROR(CheckVector(src));
  if (p.num_cells() != nodes_[src].vector.size())
    return Status::InvalidArgument("partition size mismatch");
  Node n;
  n.is_table = false;
  n.parent = src;
  n.stability = 1.0;  // P is 0/1 with exactly one 1 per column
  n.vector = p.ReduceMatrix().Matvec(nodes_[src].vector);
  return AddNode(std::move(n));
}

StatusOr<SourceId> ProtectedKernel::VTransform(SourceId src, LinOpPtr m) {
  EK_RETURN_IF_ERROR(CheckVector(src));
  if (m->cols() != nodes_[src].vector.size())
    return Status::InvalidArgument("transform shape mismatch");
  Node n;
  n.is_table = false;
  n.parent = src;
  n.stability = m->SensitivityL1();  // L1->L1 operator norm
  n.vector = m->Apply(nodes_[src].vector);
  return AddNode(std::move(n));
}

StatusOr<std::vector<SourceId>> ProtectedKernel::VSplitByPartition(
    SourceId src, const Partition& p) {
  EK_RETURN_IF_ERROR(CheckVector(src));
  if (p.num_cells() != nodes_[src].vector.size())
    return Status::InvalidArgument("partition size mismatch");
  // The dummy partition variable of Sec. 4.4.
  Node dummy;
  dummy.is_table = false;
  dummy.is_partition_dummy = true;
  dummy.parent = src;
  dummy.stability = 1.0;
  SourceId dummy_id = AddNode(std::move(dummy));

  // Copy: AddNode below may reallocate nodes_ and invalidate references.
  const Vec x = nodes_[src].vector;
  auto groups = p.Groups();
  std::vector<SourceId> children;
  children.reserve(groups.size());
  for (const auto& cells : groups) {
    Node child;
    child.is_table = false;
    child.parent = dummy_id;
    child.stability = 1.0;
    child.vector.reserve(cells.size());
    for (std::size_t c : cells) child.vector.push_back(x[c]);
    children.push_back(AddNode(std::move(child)));
  }
  return children;
}

// ------------------------------------------------------- measurements

StatusOr<Vec> ProtectedKernel::VectorLaplace(SourceId src, const LinOp& m,
                                             double eps) {
  EK_RETURN_IF_ERROR(CheckVector(src));
  if (eps <= 0.0) return Status::InvalidArgument("eps must be positive");
  if (m.cols() != nodes_[src].vector.size())
    return Status::InvalidArgument("measurement shape mismatch");
  // Sensitivity is computed from the query matrix; Algorithm 2 applies the
  // upstream transformation stabilities on top.
  const double sens = m.SensitivityL1();
  EK_RETURN_IF_ERROR(Request(src, eps));
  Vec y = m.Apply(nodes_[src].vector);
  const double scale = sens / eps;
  if (scale > 0.0) {
    for (double& v : y) v += rng_.Laplace(scale);
  }
  transcript_.push_back({src, "VectorLaplace[" + m.DebugName() + "]", eps,
                         scale});
  return y;
}

StatusOr<double> ProtectedKernel::NoisyCount(SourceId src, double eps) {
  EK_RETURN_IF_ERROR(CheckTable(src));
  if (eps <= 0.0) return Status::InvalidArgument("eps must be positive");
  EK_RETURN_IF_ERROR(Request(src, eps));
  double y = static_cast<double>(nodes_[src].table->NumRows()) +
             rng_.Laplace(1.0 / eps);
  transcript_.push_back({src, "NoisyCount", eps, 1.0 / eps});
  return y;
}

StatusOr<std::size_t> ProtectedKernel::WorstApprox(SourceId src,
                                                   const LinOp& workload,
                                                   const Vec& xhat,
                                                   double eps,
                                                   double score_sensitivity) {
  EK_RETURN_IF_ERROR(CheckVector(src));
  if (eps <= 0.0) return Status::InvalidArgument("eps must be positive");
  if (workload.cols() != nodes_[src].vector.size() ||
      xhat.size() != nodes_[src].vector.size())
    return Status::InvalidArgument("workload/estimate shape mismatch");
  if (score_sensitivity <= 0.0)
    return Status::InvalidArgument("score sensitivity must be positive");
  EK_RETURN_IF_ERROR(Request(src, eps));
  Vec truth = workload.Apply(nodes_[src].vector);
  Vec approx = workload.Apply(xhat);
  std::vector<double> scores(truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i)
    scores[i] = std::abs(truth[i] - approx[i]) / score_sensitivity;
  std::size_t pick = rng_.ExponentialMechanism(scores, eps);
  transcript_.push_back({src, "WorstApprox", eps, 0.0});
  return pick;
}

StatusOr<std::size_t> ProtectedKernel::ChooseByVectorScores(
    SourceId src, const std::vector<std::function<double(const Vec&)>>& f,
    double eps, double sensitivity) {
  EK_RETURN_IF_ERROR(CheckVector(src));
  if (eps <= 0.0 || sensitivity <= 0.0)
    return Status::InvalidArgument("eps and sensitivity must be positive");
  if (f.empty()) return Status::InvalidArgument("no candidates");
  EK_RETURN_IF_ERROR(Request(src, eps));
  std::vector<double> scores(f.size());
  for (std::size_t i = 0; i < f.size(); ++i)
    scores[i] = f[i](nodes_[src].vector) / sensitivity;
  std::size_t pick = rng_.ExponentialMechanism(scores, eps);
  transcript_.push_back({src, "ChooseByVectorScores", eps, 0.0});
  return pick;
}

StatusOr<std::size_t> ProtectedKernel::ChooseByTableScores(
    SourceId src, const std::vector<std::function<double(const Table&)>>& f,
    double eps, double sensitivity) {
  EK_RETURN_IF_ERROR(CheckTable(src));
  if (eps <= 0.0 || sensitivity <= 0.0)
    return Status::InvalidArgument("eps and sensitivity must be positive");
  if (f.empty()) return Status::InvalidArgument("no candidates");
  EK_RETURN_IF_ERROR(Request(src, eps));
  std::vector<double> scores(f.size());
  for (std::size_t i = 0; i < f.size(); ++i)
    scores[i] = f[i](*nodes_[src].table) / sensitivity;
  std::size_t pick = rng_.ExponentialMechanism(scores, eps);
  transcript_.push_back({src, "ChooseByTableScores", eps, 0.0});
  return pick;
}

}  // namespace ektelo
