// BudgetScope: client-side privacy-budget arithmetic as a first-class
// object.
//
// Plans used to hand-roll their eps splitting ("eps_part = eps * 0.25;
// eps_meas = eps - eps_part") at every call site.  A BudgetScope makes the
// allocation explicit and checkable: a scope is an allowance of eps that
// can be charged, split into sequential sub-scopes, or split into parallel
// sub-scopes (mirroring the kernel's Algorithm 2 composition rules on the
// client side).  Exhaustion is detected against the *scope*, before the
// request ever reaches the kernel — a plan that overspends its stage
// allowance fails locally even if the kernel root still has budget left.
//
// The kernel remains the authority for the privacy proof: scopes are pure
// public bookkeeping layered on top, and a kernel refusal still wins (the
// typed handles refund the scope when the kernel says no).
//
// Composition rules:
//   * Split({f1, .., fk})    — sequential composition: child i receives
//     f_i * remaining(); the parent reserves the combined allowance
//     immediately, so budget can never be allocated twice.  When the
//     fractions sum to 1 the last child absorbs the exact floating-point
//     remainder, so a fully-split scope spends *exactly* its allowance.
//   * SplitParallel(k)       — parallel composition across the children
//     of a VSplitByPartition: every child receives the full remaining
//     allowance (the kernel charges only the max across partition
//     children, Sec. 4.4), and the parent reserves that amount once.
#ifndef EKTELO_KERNEL_BUDGET_H_
#define EKTELO_KERNEL_BUDGET_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace ektelo {

class BudgetScope {
 public:
  /// A root scope with an allowance of eps_total.
  explicit BudgetScope(double eps_total);

  BudgetScope(BudgetScope&&) = default;
  BudgetScope& operator=(BudgetScope&&) = default;
  BudgetScope(const BudgetScope&) = delete;
  BudgetScope& operator=(const BudgetScope&) = delete;

  double total() const { return total_; }
  double spent() const { return spent_; }
  /// Unspent allowance, clamped at 0 (FP accumulation can overshoot by an
  /// ulp; callers must never see a negative budget).
  double remaining() const;
  bool exhausted() const;

  /// Whether Charge(eps) would succeed (same relative slack as the
  /// kernel's tracker, so spending an allowance in k exact pieces works).
  bool CanCharge(double eps) const;
  /// Reserve eps from this scope; kBudgetExhausted if it does not fit.
  Status Charge(double eps);
  /// Return a previously charged amount (used when the kernel refuses a
  /// request after the scope accepted it).
  void Refund(double eps);

  /// Sequential split: child i gets fracs[i] * remaining().  Requires
  /// every fraction >= 0 and sum(fracs) <= 1 (+slack).  The parent
  /// reserves the combined child allowance immediately.
  StatusOr<std::vector<BudgetScope>> Split(const std::vector<double>& fracs);

  /// Parallel split for partition children: k scopes, each with the full
  /// remaining allowance, reserved from the parent once.  Safe because
  /// the kernel charges the *max* across children of a partition.
  StatusOr<std::vector<BudgetScope>> SplitParallel(std::size_t k);

 private:
  double total_;
  double spent_ = 0.0;
};

/// Scope-first metering shared by every typed Private->Public operator:
/// reserve eps from the scope (local refusal, nothing reaches the
/// kernel), run the kernel request, and refund if the kernel — the
/// authority for the privacy proof — refuses after all.
template <typename Fn>
auto ScopeMetered(BudgetScope& scope, double eps, Fn&& fn)
    -> decltype(fn()) {
  EK_RETURN_IF_ERROR(scope.Charge(eps));
  auto result = fn();
  if (!result.ok()) scope.Refund(eps);
  return result;
}

}  // namespace ektelo

#endif  // EKTELO_KERNEL_BUDGET_H_
