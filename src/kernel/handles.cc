#include "kernel/handles.h"

#include <utility>

#include "util/check.h"

namespace ektelo {

// ------------------------------------------------------- ProtectedVector

StatusOr<ProtectedVector> ProtectedVector::Wrap(ProtectedKernel* kernel,
                                                SourceId id) {
  EK_CHECK(kernel != nullptr);
  if (!kernel->IsVectorSource(id))
    return Status::InvalidArgument("source is not a vector");
  return ProtectedVector(kernel, id);
}

ProtectedVector::ProtectedVector(ProtectedKernel* kernel, SourceId id)
    : kernel_(kernel), id_(id) {
  EK_CHECK(kernel != nullptr);
  EK_CHECK(kernel->IsVectorSource(id));
}

std::size_t ProtectedVector::size() const { return kernel_->VectorSize(id_); }

double ProtectedVector::stability() const {
  return kernel_->SourceStability(id_);
}

StatusOr<ProtectedVector> ProtectedVector::ReduceByPartition(
    const Partition& p) const {
  EK_ASSIGN_OR_RETURN(SourceId reduced,
                      kernel_->VReduceByPartition(id_, p));
  return ProtectedVector(kernel_, reduced);
}

StatusOr<ProtectedVector> ProtectedVector::Transform(LinOpPtr m) const {
  EK_ASSIGN_OR_RETURN(SourceId out, kernel_->VTransform(id_, std::move(m)));
  return ProtectedVector(kernel_, out);
}

StatusOr<std::vector<ProtectedVector>> ProtectedVector::SplitByPartition(
    const Partition& p) const {
  EK_ASSIGN_OR_RETURN(std::vector<SourceId> ids,
                      kernel_->VSplitByPartition(id_, p));
  std::vector<ProtectedVector> children;
  children.reserve(ids.size());
  for (SourceId c : ids) children.emplace_back(ProtectedVector(kernel_, c));
  return children;
}

StatusOr<Vec> ProtectedVector::Laplace(const LinOp& m, double eps,
                                       BudgetScope& scope) const {
  return ScopeMetered(scope, eps,
                      [&] { return kernel_->VectorLaplace(id_, m, eps); });
}

StatusOr<std::size_t> ProtectedVector::WorstApprox(
    const LinOp& workload, const Vec& xhat, double eps, BudgetScope& scope,
    double score_sensitivity) const {
  return ScopeMetered(scope, eps, [&] {
    return kernel_->WorstApprox(id_, workload, xhat, eps, score_sensitivity);
  });
}

StatusOr<std::size_t> ProtectedVector::ChooseByScores(
    const std::vector<std::function<double(const Vec&)>>& scorers, double eps,
    double sensitivity, BudgetScope& scope) const {
  return ScopeMetered(scope, eps, [&] {
    return kernel_->ChooseByVectorScores(id_, scorers, eps, sensitivity);
  });
}

// -------------------------------------------------------- ProtectedTable

ProtectedTable ProtectedTable::Root(ProtectedKernel* kernel) {
  EK_CHECK(kernel != nullptr);
  return ProtectedTable(kernel, kernel->root());
}

StatusOr<ProtectedTable> ProtectedTable::Wrap(ProtectedKernel* kernel,
                                              SourceId id) {
  EK_CHECK(kernel != nullptr);
  if (!kernel->IsTableSource(id))
    return Status::InvalidArgument("source is not a table");
  return ProtectedTable(kernel, id);
}

ProtectedTable::ProtectedTable(ProtectedKernel* kernel, SourceId id)
    : kernel_(kernel), id_(id) {
  EK_CHECK(kernel->IsTableSource(id));
}

const Schema& ProtectedTable::schema() const {
  return kernel_->SourceSchema(id_);
}

StatusOr<ProtectedTable> ProtectedTable::Where(const Predicate& p) const {
  EK_ASSIGN_OR_RETURN(SourceId out, kernel_->TWhere(id_, p));
  return ProtectedTable(kernel_, out);
}

StatusOr<ProtectedTable> ProtectedTable::Select(
    const std::vector<std::string>& attrs) const {
  EK_ASSIGN_OR_RETURN(SourceId out, kernel_->TSelect(id_, attrs));
  return ProtectedTable(kernel_, out);
}

StatusOr<ProtectedTable> ProtectedTable::GroupBy(
    const std::vector<std::string>& attrs) const {
  EK_ASSIGN_OR_RETURN(SourceId out, kernel_->TGroupBy(id_, attrs));
  return ProtectedTable(kernel_, out);
}

StatusOr<ProtectedVector> ProtectedTable::Vectorize() const {
  EK_ASSIGN_OR_RETURN(SourceId out, kernel_->TVectorize(id_));
  return ProtectedVector(kernel_, out);
}

StatusOr<double> ProtectedTable::NoisyCount(double eps,
                                            BudgetScope& scope) const {
  return ScopeMetered(scope, eps,
                      [&] { return kernel_->NoisyCount(id_, eps); });
}

StatusOr<std::size_t> ProtectedTable::ChooseByScores(
    const std::vector<std::function<double(const Table&)>>& scorers,
    double eps, double sensitivity, BudgetScope& scope) const {
  return ScopeMetered(scope, eps, [&] {
    return kernel_->ChooseByTableScores(id_, scorers, eps, sensitivity);
  });
}

}  // namespace ektelo
