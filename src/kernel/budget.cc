#include "kernel/budget.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ektelo {

namespace {
// Matches the kernel tracker's relative slack so a scope sized off
// BudgetRemaining() admits exactly the requests the kernel admits.
constexpr double kScopeSlack = 1e-9;
}  // namespace

BudgetScope::BudgetScope(double eps_total) : total_(eps_total) {
  EK_CHECK_GE(eps_total, 0.0);
}

double BudgetScope::remaining() const {
  return std::max(0.0, total_ - spent_);
}

bool BudgetScope::exhausted() const {
  // "Spent, up to FP dust" — not the admission rule (CanCharge carries
  // relative slack so an exactly-spent scope still admits zero-cost dust).
  return remaining() <= (total_ + 1.0) * kScopeSlack;
}

bool BudgetScope::CanCharge(double eps) const {
  if (eps < 0.0) return false;
  return spent_ + eps <= total_ * (1.0 + kScopeSlack) + kScopeSlack;
}

Status BudgetScope::Charge(double eps) {
  if (eps < 0.0) return Status::InvalidArgument("negative budget charge");
  if (!CanCharge(eps)) {
    return Status::BudgetExhausted(
        "scope charge of " + std::to_string(eps) + " exceeds remaining " +
        std::to_string(remaining()));
  }
  spent_ += eps;
  return Status::Ok();
}

void BudgetScope::Refund(double eps) {
  EK_CHECK_GE(eps, 0.0);
  spent_ = std::max(0.0, spent_ - eps);
}

StatusOr<std::vector<BudgetScope>> BudgetScope::Split(
    const std::vector<double>& fracs) {
  if (fracs.empty())
    return Status::InvalidArgument("Split needs at least one fraction");
  double sum = 0.0;
  for (double f : fracs) {
    // NaN slips through ordered comparisons; catch it explicitly so an
    // invalid fraction is a recoverable Status, not a CHECK-abort in the
    // child constructor.
    if (!std::isfinite(f) || f < 0.0)
      return Status::InvalidArgument("split fraction must be in [0, 1]");
    sum += f;
  }
  if (sum > 1.0 + kScopeSlack)
    return Status::InvalidArgument("split fractions exceed the scope");
  const double base = remaining();
  std::vector<BudgetScope> children;
  children.reserve(fracs.size());
  double allocated = 0.0;
  for (std::size_t i = 0; i < fracs.size(); ++i) {
    // A fully-split scope must allocate *exactly* its remainder, so the
    // last child takes base - sum(previous) rather than frac * base.
    const bool absorbs_remainder =
        (i + 1 == fracs.size()) && sum >= 1.0 - kScopeSlack;
    const double share = absorbs_remainder
                             ? std::max(0.0, base - allocated)
                             : fracs[i] * base;
    children.emplace_back(BudgetScope(share));
    allocated += share;
  }
  spent_ += std::min(allocated, base);
  return children;
}

StatusOr<std::vector<BudgetScope>> BudgetScope::SplitParallel(std::size_t k) {
  std::vector<BudgetScope> children;
  if (k == 0) return children;
  const double base = remaining();
  children.reserve(k);
  for (std::size_t i = 0; i < k; ++i)
    children.emplace_back(BudgetScope(base));
  spent_ += base;  // reserved once: the kernel charges max over children
  return children;
}

}  // namespace ektelo
