// The protected kernel (paper Sec. 4): the only component that touches
// private data.
//
// The kernel is initialized with a single protected table and a global
// privacy budget eps_total.  Plans run in untrusted client space and
// interact with the kernel exclusively through:
//
//   * Private operators (transformations): the kernel derives a new data
//     source, records its stability w.r.t. its parent in the
//     transformation graph, and returns only an opaque SourceId.
//   * Private->Public operators (measurements): the kernel charges the
//     request through the budget tracker (Algorithm 2) — which implements
//     sequential composition along transformation chains and parallel
//     composition across the children of a partition — and only then
//     returns a noisy answer.
//
// Budget exhaustion returns Status::kBudgetExhausted; the decision is a
// deterministic function of public bookkeeping state, so the failure path
// leaks nothing about the data (Sec. 4.3).
//
// ---- Thread-safety contract ----
//
// The kernel is safe to call from concurrent plan branches.  The budget
// tracker (Algorithm 2's Request walk), the source-node table and the
// transcript are guarded by one kernel mutex: charges are atomic — a
// refused request changes no bookkeeping, and two racing requests can
// never jointly overspend, because each walk holds the lock from leaf
// check to root commit.  Source nodes are immutable after creation (only
// budgets, child counters and noise streams change, each under a lock),
// and the node table is a deque, so measurements read their source's data
// without locking while other branches derive new sources.
//
// Determinism: noise is NOT drawn from one shared generator (whose draw
// order would depend on thread scheduling) but from a per-source stream
// seeded as a pure function of the source's lineage — SplitMix64-mixed
// (parent seed, child index) pairs rooted at the kernel seed, the keyed
// Rng::Fork discipline.  A measurement's noise therefore depends only on
// (kernel seed, source lineage, per-source draw order), making parallel
// plan execution bitwise-identical to serial as long as concurrent
// branches touch disjoint sources (the Sec. 4.4 partition-children
// discipline; measurements on the *same* source still serialize on that
// source's stream lock and keep their program order).  The transcript
// records entries in charge order, which under parallel branches is a
// scheduling-dependent interleaving of the per-branch orders — compare it
// order-normalized.
#ifndef EKTELO_KERNEL_KERNEL_H_
#define EKTELO_KERNEL_KERNEL_H_

#include <algorithm>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "data/table.h"
#include "matrix/linop.h"
#include "matrix/partition.h"
#include "util/rng.h"
#include "util/status.h"

namespace ektelo {

using SourceId = std::size_t;

class ProtectedKernel {
 public:
  /// Init(T, eps_tot): wraps the protected table as the root source.
  ProtectedKernel(Table table, double eps_total, uint64_t seed);

  SourceId root() const { return 0; }
  double eps_total() const { return eps_total_; }
  /// Budget consumed at the root so far (public bookkeeping).
  double BudgetConsumed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return nodes_[0].budget;
  }
  /// Unspent root budget, clamped at 0: repeated charges that sum to
  /// eps_total can overshoot by an ulp under the tracker's FP slack, and
  /// callers must never observe a negative remainder.
  double BudgetRemaining() const {
    std::lock_guard<std::mutex> lock(mu_);
    return std::max(0.0, eps_total_ - nodes_[0].budget);
  }

  // ---- Public metadata (data-independent, safe to expose) ----
  bool IsTableSource(SourceId id) const;
  bool IsVectorSource(SourceId id) const;
  /// Schema of a table source (domains are public).
  const Schema& SourceSchema(SourceId id) const;
  /// Length of a vector source (derived from public domain metadata).
  std::size_t VectorSize(SourceId id) const;
  /// Stability of `id`'s transformation w.r.t. its parent.
  double SourceStability(SourceId id) const;

  // ---- Private operators: table transformations (Sec. 5.1) ----
  StatusOr<SourceId> TWhere(SourceId src, const Predicate& p);
  StatusOr<SourceId> TSelect(SourceId src,
                             const std::vector<std::string>& attrs);
  StatusOr<SourceId> TGroupBy(SourceId src,
                              const std::vector<std::string>& attrs);
  /// T-Vectorize: table -> count vector over the full domain.
  StatusOr<SourceId> TVectorize(SourceId src);

  // ---- Private operators: vector transformations ----
  /// x' = P x (1-stable; P has one 1 per column).
  StatusOr<SourceId> VReduceByPartition(SourceId src, const Partition& p);
  /// General linear transform x' = M x; stability = max L1 column norm.
  StatusOr<SourceId> VTransform(SourceId src, LinOpPtr m);
  /// Split into one child per partition group.  Introduces the dummy
  /// partition variable of Sec. 4.4, so budget composes in parallel
  /// across children.  Children are returned in group order.
  StatusOr<std::vector<SourceId>> VSplitByPartition(SourceId src,
                                                    const Partition& p);

  // ---- Private->Public operators: measurement (Sec. 5.2) ----
  /// Vector Laplace: returns M x + (sens(M)/eps) * Lap(1)^m, charging eps
  /// through Algorithm 2 (which applies upstream stabilities).
  StatusOr<Vec> VectorLaplace(SourceId src, const LinOp& m, double eps);
  /// |D| + Lap(1/eps) on a table source.
  StatusOr<double> NoisyCount(SourceId src, double eps);
  /// Exponential mechanism: index of the workload row with (noisily) the
  /// largest absolute error |w_i x - w_i xhat| (MWEM's query selection).
  /// score_sensitivity must bound the per-row score sensitivity (1 for
  /// 0/1 workloads).
  StatusOr<std::size_t> WorstApprox(SourceId src, const LinOp& workload,
                                    const Vec& xhat, double eps,
                                    double score_sensitivity = 1.0);
  /// Generic exponential mechanism over scores of the private vector.
  StatusOr<std::size_t> ChooseByVectorScores(
      SourceId src, const std::vector<std::function<double(const Vec&)>>& f,
      double eps, double sensitivity);
  /// Generic exponential mechanism over scores of a private table (used by
  /// PrivBayes' mutual-information structure selection).
  StatusOr<std::size_t> ChooseByTableScores(
      SourceId src, const std::vector<std::function<double(const Table&)>>& f,
      double eps, double sensitivity);

  // ---- Transcript (public; for tests and transparency) ----
  struct TranscriptEntry {
    SourceId source;
    std::string op;
    double eps;
    double noise_scale;
  };
  /// Entries appear in charge order.  Only inspect while no kernel calls
  /// are in flight; under parallel branches the interleaving (and the
  /// SourceId values of concurrently derived sources) is
  /// scheduling-dependent, so compare transcripts order-normalized on
  /// (op, eps, noise_scale).
  const std::vector<TranscriptEntry>& transcript() const {
    return transcript_;
  }

 private:
  /// A source's private noise stream plus the lock that serializes draws
  /// on it.  Separately allocated so Node stays movable and stream locks
  /// are per-source (disjoint branches never contend).
  struct NoiseStream {
    explicit NoiseStream(uint64_t seed) : rng(seed) {}
    std::mutex mu;
    Rng rng;
  };

  struct Node {
    bool is_table = false;
    bool is_partition_dummy = false;
    std::optional<SourceId> parent;
    double stability = 1.0;  // w.r.t. parent
    double budget = 0.0;     // B(sv)
    std::optional<Table> table;
    Vec vector;
    /// Lineage seed: a pure function of (kernel seed, path of child
    /// indices from the root), from which both this source's noise stream
    /// and its children's seeds derive.
    uint64_t stream_seed = 0;
    /// Children derived from this source so far; the next child's seed
    /// mixes this index.  Guarded by mu_.
    uint64_t child_seq = 0;
    std::unique_ptr<NoiseStream> stream;
  };

  /// Algorithm 2.  Charges eps at `sv` and propagates to the root,
  /// multiplying by stabilities and taking the max across partition
  /// children.  Atomic: on failure no budget state changes.  Caller holds
  /// mu_.
  Status Request(SourceId sv, double eps);
  Status RequestImpl(SourceId sv, double eps);

  /// Appends a child of `parent`, deriving its deterministic stream seed
  /// from the parent's seed and child index.  Caller holds mu_.
  SourceId AddChild(SourceId parent, Node n);
  /// Caller holds mu_.
  Status CheckVector(SourceId id) const;
  Status CheckTable(SourceId id) const;
  bool IsTableSourceLocked(SourceId id) const;
  bool IsVectorSourceLocked(SourceId id) const;

  double eps_total_;
  mutable std::mutex mu_;  // guards nodes_ structure, budgets, transcript
  // Deque: references to existing nodes stay valid while new sources are
  // appended, so measurements read immutable node data without the lock.
  std::deque<Node> nodes_;
  std::vector<TranscriptEntry> transcript_;
};

}  // namespace ektelo

#endif  // EKTELO_KERNEL_KERNEL_H_
