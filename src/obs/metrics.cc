#include "obs/metrics.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <unordered_map>

namespace ektelo::obs {
namespace internal {
std::atomic<uint32_t> g_armed{0};
}  // namespace internal

namespace {

// Reads the two arming knobs once at static-init time.  EKTELO_OBS
// governs timing (armed unless explicitly "0"); EKTELO_TRACE governs
// per-request span recording (off unless explicitly truthy).  Matches
// the strict-parse spirit of ApplyServeEnv: only "0"/"" disable OBS,
// only a leading '1'..'9'/'t'/'y' enables TRACE.
uint32_t InitialArmedFlags() {
  uint32_t flags = kTimingArmed;
  if (const char* v = std::getenv("EKTELO_OBS")) {
    if (v[0] == '0' && v[1] == '\0') flags &= ~kTimingArmed;
  }
  if (const char* v = std::getenv("EKTELO_TRACE")) {
    if ((v[0] >= '1' && v[0] <= '9') || v[0] == 't' || v[0] == 'T' ||
        v[0] == 'y' || v[0] == 'Y') {
      flags |= kTraceArmed;
    }
  }
  return flags;
}

const uint32_t g_armed_init = [] {
  internal::g_armed.store(InitialArmedFlags(), std::memory_order_relaxed);
  return uint32_t{0};
}();

std::atomic<uint32_t> g_next_thread_id{1};

}  // namespace

void SetTimingEnabled(bool on) {
  if (on) {
    internal::g_armed.fetch_or(kTimingArmed, std::memory_order_relaxed);
  } else {
    internal::g_armed.fetch_and(~uint32_t{kTimingArmed},
                                std::memory_order_relaxed);
  }
}

void SetTraceEnabled(bool on) {
  if (on) {
    internal::g_armed.fetch_or(kTraceArmed, std::memory_order_relaxed);
  } else {
    internal::g_armed.fetch_and(~uint32_t{kTraceArmed},
                                std::memory_order_relaxed);
  }
}

uint64_t NowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point base = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - base)
          .count());
}

uint32_t ThreadId() {
  thread_local const uint32_t id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// ------------------------------------------------------------- histogram

double Histogram::BucketEdge(int i) {
  return kMinEdge * std::ldexp(1.0, i);  // exact: power-of-two scaling
}

int Histogram::BucketIndex(double v) {
  if (!(v > BucketEdge(0))) {
    // v <= first edge, v <= 0, or NaN: NaN fails every <= comparison
    // below too, so route it to overflow explicitly.
    return std::isnan(v) ? kBuckets : 0;
  }
  for (int i = 1; i < kBuckets; ++i) {
    if (v <= BucketEdge(i)) return i;
  }
  return kBuckets;
}

void Histogram::Observe(double v) {
  Shard& s = shards_[ThreadId() & (kMetricShards - 1)];
  s.counts[static_cast<std::size_t>(BucketIndex(v))].fetch_add(
      1, std::memory_order_relaxed);
  uint64_t old_bits = s.sum_bits.load(std::memory_order_relaxed);
  for (;;) {
    double old_sum;
    std::memcpy(&old_sum, &old_bits, sizeof old_sum);
    const double new_sum = old_sum + v;
    uint64_t new_bits;
    std::memcpy(&new_bits, &new_sum, sizeof new_bits);
    if (s.sum_bits.compare_exchange_weak(old_bits, new_bits,
                                         std::memory_order_relaxed)) {
      return;
    }
  }
}

void Histogram::Counts(uint64_t out[kBuckets + 1]) const {
  for (int i = 0; i <= kBuckets; ++i) out[i] = 0;
  for (const Shard& s : shards_) {
    for (int i = 0; i <= kBuckets; ++i) {
      out[i] += s.counts[static_cast<std::size_t>(i)].load(
          std::memory_order_relaxed);
    }
  }
}

uint64_t Histogram::Count() const {
  uint64_t counts[kBuckets + 1];
  Counts(counts);
  uint64_t total = 0;
  for (int i = 0; i <= kBuckets; ++i) total += counts[i];
  return total;
}

double Histogram::Sum() const {
  double total = 0;
  for (const Shard& s : shards_) {
    const uint64_t bits = s.sum_bits.load(std::memory_order_relaxed);
    double v;
    std::memcpy(&v, &bits, sizeof v);
    total += v;
  }
  return total;
}

// -------------------------------------------------------------- registry

struct Registry::Impl {
  struct Entry {
    MetricInfo info;  // typed pointer aims into one of the deques below
  };

  mutable std::mutex mu;
  // Deques: references handed out must never move on growth.
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::vector<Entry> entries;  // registration order, for export
  std::unordered_map<std::string, std::size_t> index;  // name \x1f labels

  static std::string Key(const std::string& name, const std::string& labels) {
    std::string k = name;
    k.push_back('\x1f');
    k += labels;
    return k;
  }
};

Registry& Registry::Global() {
  static Registry* g = new Registry();  // leaked: outlives static dtors
  return *g;
}

Registry::Registry() : impl_(new Impl()) {}

// Local registries (tests) clean up; Global() intentionally never runs
// this.
Registry::~Registry() { delete impl_; }

Counter& Registry::GetCounter(const std::string& name, const std::string& help,
                              const std::string& labels) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const std::string key = Impl::Key(name, labels);
  auto it = impl_->index.find(key);
  if (it != impl_->index.end()) {
    return *const_cast<Counter*>(impl_->entries[it->second].info.counter);
  }
  impl_->counters.emplace_back();
  Counter& c = impl_->counters.back();
  MetricInfo info;
  info.name = name;
  info.labels = labels;
  info.help = help;
  info.type = MetricType::kCounter;
  info.counter = &c;
  impl_->index.emplace(key, impl_->entries.size());
  impl_->entries.push_back({std::move(info)});
  return c;
}

Gauge& Registry::GetGauge(const std::string& name, const std::string& help,
                          const std::string& labels) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const std::string key = Impl::Key(name, labels);
  auto it = impl_->index.find(key);
  if (it != impl_->index.end()) {
    return *const_cast<Gauge*>(impl_->entries[it->second].info.gauge);
  }
  impl_->gauges.emplace_back();
  Gauge& g = impl_->gauges.back();
  MetricInfo info;
  info.name = name;
  info.labels = labels;
  info.help = help;
  info.type = MetricType::kGauge;
  info.gauge = &g;
  impl_->index.emplace(key, impl_->entries.size());
  impl_->entries.push_back({std::move(info)});
  return g;
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  const std::string& help,
                                  const std::string& labels) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const std::string key = Impl::Key(name, labels);
  auto it = impl_->index.find(key);
  if (it != impl_->index.end()) {
    return *const_cast<Histogram*>(impl_->entries[it->second].info.histogram);
  }
  impl_->histograms.emplace_back();
  Histogram& h = impl_->histograms.back();
  MetricInfo info;
  info.name = name;
  info.labels = labels;
  info.help = help;
  info.type = MetricType::kHistogram;
  info.histogram = &h;
  impl_->index.emplace(key, impl_->entries.size());
  impl_->entries.push_back({std::move(info)});
  return h;
}

std::vector<MetricInfo> Registry::Metrics() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<MetricInfo> out;
  out.reserve(impl_->entries.size());
  for (const Impl::Entry& e : impl_->entries) out.push_back(e.info);
  return out;
}

}  // namespace ektelo::obs
