#include "obs/log.h"

#include <cinttypes>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/metrics.h"

namespace ektelo::obs {
namespace {

struct EventState {
  uint64_t last_ns = 0;    // NowNs() of the last emitted line
  uint64_t suppressed = 0; // lines dropped since then
  bool seen = false;
};

std::mutex g_log_mu;
std::unordered_map<std::string, EventState>& States() {
  static auto* m = new std::unordered_map<std::string, EventState>();
  return *m;
}

char SevChar(Severity sev) {
  switch (sev) {
    case Severity::kInfo:
      return 'I';
    case Severity::kWarn:
      return 'W';
    case Severity::kError:
      return 'E';
  }
  return '?';
}

bool NeedsQuoting(const std::string& v) {
  if (v.empty()) return true;
  for (char c : v) {
    if (c == ' ' || c == '=' || c == '"' || c == '\n' || c == '\t') return true;
  }
  return false;
}

void AppendValue(std::string& out, const std::string& v) {
  if (!NeedsQuoting(v)) {
    out += v;
    return;
  }
  out.push_back('"');
  for (char c : v) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

}  // namespace

bool LogEvery(Severity sev, const std::string& event, double min_interval_s,
              std::initializer_list<LogField> fields) {
  const uint64_t now_ns = NowNs();
  uint64_t suppressed = 0;
  {
    std::lock_guard<std::mutex> lock(g_log_mu);
    EventState& st = States()[event];
    if (st.seen && min_interval_s > 0) {
      const uint64_t interval_ns =
          static_cast<uint64_t>(min_interval_s * 1e9);
      if (now_ns - st.last_ns < interval_ns) {
        ++st.suppressed;
        return false;
      }
    }
    st.seen = true;
    st.last_ns = now_ns;
    suppressed = st.suppressed;
    st.suppressed = 0;
  }

  // Build the whole line first so one fprintf keeps it atomic enough
  // across threads (stderr is unbuffered; single write, single line).
  char head[64];
  std::snprintf(head, sizeof head, "%c %" PRIu64 ".%06u event=",
                SevChar(sev), now_ns / 1000000000u,
                static_cast<unsigned>((now_ns % 1000000000u) / 1000u));
  std::string line = head;
  line += event;
  for (const LogField& f : fields) {
    line.push_back(' ');
    line += f.first;
    line.push_back('=');
    AppendValue(line, f.second);
  }
  if (suppressed > 0) {
    line += " suppressed=";
    line += std::to_string(suppressed);
  }
  line.push_back('\n');
  std::fputs(line.c_str(), stderr);
  return true;
}

bool Log(Severity sev, const std::string& event,
         std::initializer_list<LogField> fields) {
  return LogEvery(sev, event, kDefaultLogIntervalS, fields);
}

void ResetLogRateLimiterForTest() {
  std::lock_guard<std::mutex> lock(g_log_mu);
  States().clear();
}

}  // namespace ektelo::obs
