#include "obs/trace.h"

#include <deque>
#include <mutex>

namespace ektelo::obs {

struct RequestTrace::Impl {
  mutable std::mutex mu;
  std::vector<TraceEvent> ring;
  std::size_t capacity;
  uint64_t dropped = 0;
};

RequestTrace::RequestTrace(std::size_t capacity) : impl_(new Impl()) {
  impl_->capacity = capacity == 0 ? 1 : capacity;
}

RequestTrace::~RequestTrace() = default;

void RequestTrace::Record(const TraceEvent& ev) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->ring.size() >= impl_->capacity) {
    ++impl_->dropped;
    return;
  }
  impl_->ring.push_back(ev);
}

std::vector<TraceEvent> RequestTrace::Events() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->ring;
}

uint64_t RequestTrace::DroppedCount() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->dropped;
}

namespace {
thread_local RequestTrace* t_current_trace = nullptr;
}  // namespace

RequestTrace* CurrentTrace() { return t_current_trace; }

RequestTrace* SwapCurrentTrace(RequestTrace* t) {
  RequestTrace* prev = t_current_trace;
  t_current_trace = t;
  return prev;
}

void RecordManualSpan(const char* name, const char* cat, uint64_t start_ns,
                      uint64_t end_ns, Histogram* latency) {
  const uint32_t flags = ArmedFlags();
  if (flags == 0) return;
  const uint64_t dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  if (latency != nullptr && (flags & kTimingArmed) != 0) {
    latency->Observe(static_cast<double>(dur_ns) * 1e-9);
  }
  if ((flags & kTraceArmed) != 0) {
    if (RequestTrace* trace = CurrentTrace()) {
      TraceEvent ev;
      ev.name = name;
      ev.cat = cat;
      ev.start_ns = start_ns;
      ev.dur_ns = dur_ns;
      ev.tid = ThreadId();
      trace->Record(ev);
    }
  }
}

struct TraceStore::Impl {
  mutable std::mutex mu;
  std::deque<std::shared_ptr<RequestTrace>> recent;  // newest at back
};

TraceStore::TraceStore() : impl_(new Impl()) {}

TraceStore& TraceStore::Global() {
  static TraceStore* g = new TraceStore();  // leaked, like Registry
  return *g;
}

void TraceStore::Publish(std::shared_ptr<RequestTrace> trace) {
  if (trace == nullptr) return;
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->recent.push_back(std::move(trace));
  while (impl_->recent.size() > kKeep) impl_->recent.pop_front();
}

std::vector<std::shared_ptr<RequestTrace>> TraceStore::Latest(
    std::size_t n) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<std::shared_ptr<RequestTrace>> out;
  const std::size_t have = impl_->recent.size();
  const std::size_t take = n < have ? n : have;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(impl_->recent[have - 1 - i]);
  }
  return out;
}

}  // namespace ektelo::obs
