// Per-request execution tracing: RAII spans with monotonic-clock
// timestamps, ring-buffered into the request's RequestTrace and
// exported as Chrome trace_event JSON (obs/export.h) for Perfetto /
// chrome://tracing.
//
// Privacy boundary: span attributes are DATA-INDEPENDENT only —
// operator kind, matrix shapes/nnz, thread id, cache tier, epsilon
// (already public via the ledger).  Never cell values, never noisy or
// true query answers.  Attribute keys and string values must be
// static-duration strings (string literals), which makes accidental
// formatting of data into a span a compile-visible std::string
// conversion rather than a silent leak.
//
// Cost discipline (see obs/metrics.h): the Span constructor performs
// one relaxed atomic flags load; when neither timing nor tracing is
// armed it returns immediately having stored nothing but a null
// pointer and a zero word.  Tracing additionally requires a current
// RequestTrace installed on the thread (ScopedTraceContext), so
// armed-but-outside-a-request threads skip recording too.
//
// Determinism: spans never feed back into execution.  The ring drops
// new events once full (counting drops), so a traced request does the
// same allocations whether it emits 10 events or 10 million.
#ifndef EKTELO_OBS_TRACE_H_
#define EKTELO_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace ektelo::obs {

/// One span attribute.  `key` must be a string literal (static
/// duration).  The value is either a static string or a double —
/// shapes, nnz, iteration counts, epsilon all fit the double without
/// loss at the scales involved.
struct TraceAttr {
  const char* key = nullptr;
  const char* str = nullptr;  // static string value, or null
  double num = 0.0;           // numeric value when str is null
};

/// One completed span, fixed-size so the ring buffer is a flat vector.
struct TraceEvent {
  const char* name = nullptr;  ///< static string: span type, e.g. "serve.charge"
  const char* cat = nullptr;   ///< static string: subsystem, e.g. "serve"
  uint64_t start_ns = 0;       ///< NowNs() at open
  uint64_t dur_ns = 0;         ///< close - open
  uint32_t tid = 0;            ///< obs::ThreadId() of the recording thread
  uint8_t n_attrs = 0;
  TraceAttr attrs[4];
};

/// Ring buffer of spans for one request, plus data-independent request
/// metadata for the exporter.  Thread-safe: worker threads and
/// ParallelFor helpers append concurrently under an internal mutex
/// (only taken when tracing is armed, so the disarmed path never sees
/// it).
class RequestTrace {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit RequestTrace(std::size_t capacity = kDefaultCapacity);
  ~RequestTrace();
  RequestTrace(const RequestTrace&) = delete;
  RequestTrace& operator=(const RequestTrace&) = delete;

  /// Appends one completed span; drop-new once full (DroppedCount
  /// reports how many).
  void Record(const TraceEvent& ev);

  std::vector<TraceEvent> Events() const;
  uint64_t DroppedCount() const;

  // Exporter metadata — set once by the owner before publishing.
  std::string request_id;
  std::string tenant;
  std::string plan;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The RequestTrace the calling thread is currently recording into
/// (null outside any request).  Propagated manually across thread
/// hops: ThreadPool::ParallelFor installs the caller's trace in its
/// helpers, and serve workers install the task's trace before
/// executing it.
RequestTrace* CurrentTrace();

/// Installs `t` as the calling thread's current trace; returns the
/// previous one (restore it when done — or use ScopedTraceContext).
RequestTrace* SwapCurrentTrace(RequestTrace* t);

/// RAII install/restore of the thread's current trace.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(RequestTrace* t) : prev_(SwapCurrentTrace(t)) {}
  ~ScopedTraceContext() { SwapCurrentTrace(prev_); }
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  RequestTrace* prev_;
};

/// RAII span.  `name` and `cat` must be string literals.  Timing flows
/// into `latency` (if given) on every armed-timing close; the event is
/// recorded only when tracing is armed AND a current trace is
/// installed.  Attributes are capped at 4 (TraceEvent::attrs);
/// excess is ignored.
///
///   obs::Span span("serve.execute", "serve", &ExecSeconds());
///   span.Attr("plan", plan_name_literal);
///   span.Attr("epsilon", request.epsilon);
class Span {
 public:
  Span(const char* name, const char* cat, Histogram* latency = nullptr)
      : latency_(latency) {
    const uint32_t flags = ArmedFlags();  // the one disarmed-path load
    if (flags == 0) return;
    armed_ = flags;
    start_ns_ = NowNs();
    if ((flags & kTraceArmed) != 0) trace_ = CurrentTrace();
    ev_.name = name;
    ev_.cat = cat;
  }

  ~Span() { Close(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void Attr(const char* key, const char* static_str) {
    if (trace_ == nullptr || ev_.n_attrs >= 4) return;
    ev_.attrs[ev_.n_attrs++] = TraceAttr{key, static_str, 0.0};
  }
  void Attr(const char* key, double num) {
    if (trace_ == nullptr || ev_.n_attrs >= 4) return;
    ev_.attrs[ev_.n_attrs++] = TraceAttr{key, nullptr, num};
  }

  /// Closes the span early (idempotent; the destructor is then a no-op).
  void Close() {
    if (armed_ == 0) return;
    const uint64_t end_ns = NowNs();
    const uint64_t dur_ns = end_ns - start_ns_;
    if (latency_ != nullptr && (armed_ & kTimingArmed) != 0) {
      latency_->Observe(static_cast<double>(dur_ns) * 1e-9);
    }
    if (trace_ != nullptr) {
      ev_.start_ns = start_ns_;
      ev_.dur_ns = dur_ns;
      ev_.tid = ThreadId();
      trace_->Record(ev_);
    }
    armed_ = 0;
    trace_ = nullptr;
  }

 private:
  uint32_t armed_ = 0;          // flags snapshot; 0 = disarmed/closed
  uint64_t start_ns_ = 0;
  Histogram* latency_ = nullptr;
  RequestTrace* trace_ = nullptr;
  TraceEvent ev_;
};

/// Records a span whose endpoints were measured externally (e.g. queue
/// wait, bounded by timestamps taken on two different threads).  Obeys
/// the same arming rules as Span.
void RecordManualSpan(const char* name, const char* cat, uint64_t start_ns,
                      uint64_t end_ns, Histogram* latency = nullptr);

/// Keeps the last-published request traces for the serve Trace
/// endpoint.  Publishing transfers ownership; Latest() returns shared
/// handles so a concurrent publish can't invalidate a reader.
class TraceStore {
 public:
  static constexpr std::size_t kKeep = 8;

  static TraceStore& Global();

  void Publish(std::shared_ptr<RequestTrace> trace);

  /// Most-recent-first, up to `n` traces.
  std::vector<std::shared_ptr<RequestTrace>> Latest(std::size_t n = kKeep) const;

 private:
  struct Impl;
  Impl* impl_;
  TraceStore();
};

}  // namespace ektelo::obs

#endif  // EKTELO_OBS_TRACE_H_
