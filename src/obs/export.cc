#include "obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace ektelo::obs {
namespace {

// Shortest-ish deterministic rendering of a double: integers print
// without a fraction ("250" not "250.000000"), everything else gets 10
// significant digits — enough for bucket edges (exact powers of two
// times 1e-6) to round-trip stably across platforms.
std::string FormatDouble(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) && v > -1e15 &&
      v < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.10g", v);
  }
  return buf;
}

// Prometheus HELP text escaping: backslash and newline only.
std::string EscapeHelp(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

const char* TypeName(MetricType t) {
  switch (t) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

// Series name: counters carry the conventional _total suffix; the base
// name in HELP/TYPE headers matches the suffixed series name, which is
// what promtool expects for counters.
std::string SeriesName(const MetricInfo& m) {
  if (m.type == MetricType::kCounter) return m.name + "_total";
  return m.name;
}

void AppendSample(std::string& out, const std::string& name,
                  const std::string& labels, const std::string& value) {
  out += name;
  if (!labels.empty()) {
    out.push_back('{');
    out += labels;
    out.push_back('}');
  }
  out.push_back(' ');
  out += value;
  out.push_back('\n');
}

// Bucket sample: merges the metric's own labels with the le label.
void AppendBucketSample(std::string& out, const std::string& name,
                        const std::string& labels, const std::string& le,
                        uint64_t cumulative) {
  out += name;
  out += "_bucket{";
  if (!labels.empty()) {
    out += labels;
    out.push_back(',');
  }
  out += "le=\"";
  out += le;
  out += "\"} ";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, cumulative);
  out += buf;
  out.push_back('\n');
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// Microseconds with nanosecond remainder, rendered as a decimal: Chrome
// trace ts/dur are µs doubles.
std::string MicrosFromNanos(uint64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  return buf;
}

}  // namespace

std::string PrometheusText(const Registry& registry) {
  const std::vector<MetricInfo> metrics = registry.Metrics();
  std::string out;
  out.reserve(metrics.size() * 96);
  std::string last_header;  // suppress repeated HELP/TYPE for label series
  for (const MetricInfo& m : metrics) {
    const std::string series = SeriesName(m);
    if (series != last_header) {
      out += "# HELP ";
      out += series;
      out.push_back(' ');
      out += EscapeHelp(m.help);
      out.push_back('\n');
      out += "# TYPE ";
      out += series;
      out.push_back(' ');
      out += TypeName(m.type);
      out.push_back('\n');
      last_header = series;
    }
    switch (m.type) {
      case MetricType::kCounter: {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%" PRIu64, m.counter->Value());
        AppendSample(out, series, m.labels, buf);
        break;
      }
      case MetricType::kGauge: {
        AppendSample(out, series, m.labels, FormatDouble(m.gauge->Value()));
        break;
      }
      case MetricType::kHistogram: {
        uint64_t counts[Histogram::kBuckets + 1];
        m.histogram->Counts(counts);
        uint64_t cumulative = 0;
        for (int i = 0; i < Histogram::kBuckets; ++i) {
          cumulative += counts[i];
          // Empty interior buckets are skipped to keep scrapes compact;
          // cumulative semantics make the omitted points implied.  The
          // first bucket and +Inf always print so the series is
          // well-formed even when empty.
          if (counts[i] == 0 && i != 0) continue;
          AppendBucketSample(out, series, m.labels,
                             FormatDouble(Histogram::BucketEdge(i)),
                             cumulative);
        }
        cumulative += counts[Histogram::kBuckets];
        AppendBucketSample(out, series, m.labels, "+Inf", cumulative);
        AppendSample(out, series + "_sum", m.labels,
                     FormatDouble(m.histogram->Sum()));
        char buf[32];
        std::snprintf(buf, sizeof buf, "%" PRIu64, cumulative);
        AppendSample(out, series + "_count", m.labels, buf);
        break;
      }
    }
  }
  return out;
}

std::string ChromeTraceJson(
    const std::vector<std::shared_ptr<RequestTrace>>& traces) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  uint32_t pid = 0;
  for (const std::shared_ptr<RequestTrace>& trace : traces) {
    if (trace == nullptr) continue;
    ++pid;  // one synthetic process per request: groups cleanly in Perfetto
    std::string process_name = "request " + trace->request_id;
    if (!trace->tenant.empty()) process_name += " tenant=" + trace->tenant;
    if (!trace->plan.empty()) process_name += " plan=" + trace->plan;
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":0,\"args\":{\"name\":\"";
    out += JsonEscape(process_name);
    out += "\"}}";
    for (const TraceEvent& ev : trace->Events()) {
      out.push_back(',');
      out += "{\"name\":\"";
      out += JsonEscape(ev.name != nullptr ? ev.name : "");
      out += "\",\"cat\":\"";
      out += JsonEscape(ev.cat != nullptr ? ev.cat : "");
      out += "\",\"ph\":\"X\",\"ts\":";
      out += MicrosFromNanos(ev.start_ns);
      out += ",\"dur\":";
      out += MicrosFromNanos(ev.dur_ns);
      out += ",\"pid\":";
      out += std::to_string(pid);
      out += ",\"tid\":";
      out += std::to_string(ev.tid);
      out += ",\"args\":{";
      for (uint8_t i = 0; i < ev.n_attrs; ++i) {
        if (i != 0) out.push_back(',');
        const TraceAttr& a = ev.attrs[i];
        out.push_back('"');
        out += JsonEscape(a.key != nullptr ? a.key : "");
        out += "\":";
        if (a.str != nullptr) {
          out.push_back('"');
          out += JsonEscape(a.str);
          out.push_back('"');
        } else {
          out += FormatDouble(a.num);
        }
      }
      out += "}}";
    }
    const uint64_t dropped = trace->DroppedCount();
    if (dropped > 0) {
      out += ",{\"name\":\"trace_events_dropped\",\"ph\":\"M\",\"pid\":";
      out += std::to_string(pid);
      out += ",\"tid\":0,\"args\":{\"count\":";
      out += std::to_string(dropped);
      out += "}}";
    }
  }
  out += "]}";
  return out;
}

}  // namespace ektelo::obs
