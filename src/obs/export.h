// Exporters for the observability layer: Prometheus text exposition
// (format 0.0.4) for the metrics registry, and Chrome trace_event JSON
// (loadable in Perfetto / chrome://tracing) for request traces.
//
// Both outputs are deterministic functions of their inputs —
// registration order for metrics, event order for traces — so tests
// can golden them byte for byte.
#ifndef EKTELO_OBS_EXPORT_H_
#define EKTELO_OBS_EXPORT_H_

#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ektelo::obs {

/// Renders every metric in `registry` in Prometheus text format:
/// one # HELP / # TYPE header per metric name (first registration's
/// help wins), counters with the `_total` suffix, histograms expanded
/// to cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
std::string PrometheusText(const Registry& registry);

/// Renders traces as a Chrome trace_event JSON document:
/// {"traceEvents":[...]} with complete ("ph":"X") events, microsecond
/// ts/dur, pid 1, and per-trace metadata carried in each event's args
/// (request id, tenant, plan on the span args would be redundant; they
/// ride on thread_name-style metadata events instead).  Traces are
/// emitted most-recent-first as given.
std::string ChromeTraceJson(
    const std::vector<std::shared_ptr<RequestTrace>>& traces);

}  // namespace ektelo::obs

#endif  // EKTELO_OBS_EXPORT_H_
