// Rate-limited structured logging: single-line key=value records on
// stderr with severity and a monotonic timestamp, replacing the raw
// fprintf warnings scattered through the store and serve layers.
//
//   obs::Log(obs::Severity::kWarn, "write_behind_drop",
//            {{"queued", "64"}, {"cap", "64"}});
//     -> W 12.345678 event=write_behind_drop queued=64 cap=64
//
// Every event name carries an independent rate limit (default: first
// occurrence always logs, then at most one line per interval) so a
// degraded disk or a saturated write-behind queue cannot flood stderr
// at request rate.  Suppressed lines are counted and the count is
// attached to the next emitted line as suppressed=N.
//
// Logging never touches request data — values are operational
// (queue depths, paths, error codes), same privacy boundary as span
// attributes (obs/trace.h).
#ifndef EKTELO_OBS_LOG_H_
#define EKTELO_OBS_LOG_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>

namespace ektelo::obs {

enum class Severity : uint8_t { kInfo = 0, kWarn = 1, kError = 2 };

/// One key=value field.  Values containing spaces, '=' or '"' are
/// rendered quoted with minimal escaping.
using LogField = std::pair<std::string, std::string>;

/// Emits one structured line to stderr, subject to the per-event rate
/// limit.  `event` should be a stable lowercase_snake identifier.
/// Returns true if the line was written, false if rate-suppressed.
bool Log(Severity sev, const std::string& event,
         std::initializer_list<LogField> fields);

/// Same, with an explicit minimum interval between lines for this
/// event (seconds; <= 0 disables the limit for this call's event).
bool LogEvery(Severity sev, const std::string& event, double min_interval_s,
              std::initializer_list<LogField> fields);

/// Default per-event minimum interval, seconds.
inline constexpr double kDefaultLogIntervalS = 10.0;

/// Test hook: clears rate-limiter state so each test sees first-line
/// semantics.
void ResetLogRateLimiterForTest();

}  // namespace ektelo::obs

#endif  // EKTELO_OBS_LOG_H_
