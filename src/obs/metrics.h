// Process-global metrics registry: lock-free sharded counters, gauges,
// and fixed-log-bucket histograms, exported in Prometheus text format
// (obs/export.h) and surfaced through the serve protocol.
//
// EKTELO's core claim is transparency — plans are inspectable operator
// compositions with explicit accounting — and this layer extends that
// to the *running system*: every subsystem built over PRs 1-9 (serve
// lifecycle, plan pipeline, rewrite/search, cache tiers, solvers,
// ledger I/O, write-behind, ParallelFor) reports into one registry
// under one naming scheme, replacing three generations of ad-hoc stats
// structs as the single source of truth.
//
// Two hard invariants, mirrored from util/failpoint.h:
//
//   1. Observability NEVER changes an answer.  Metrics and spans are
//      passive observers: no RNG, no floating-point state, no
//      scheduling decision consults them.  Replies and plan outputs are
//      bitwise identical with observability armed or disarmed (asserted
//      registry-wide by tests/obs_test.cc).
//   2. The disarmed hot path costs one relaxed atomic load.  Counters
//      are always live (they back the serve Stats protocol and cost one
//      relaxed add on a cacheline-padded per-thread shard — cheaper
//      than the mutexed ints they replaced), but everything that needs
//      a clock (latency histograms via obs::Span, trace recording)
//      checks a single process-global relaxed atomic and bails.
//
// Arming: EKTELO_OBS=0 disarms timing (default armed: scrapes carry
// latency data out of the box); EKTELO_TRACE=1 arms per-request trace
// recording (default off — see obs/trace.h).  Both have programmatic
// setters for tests and the overhead bench.
//
// Metric references returned by the registry are stable for the process
// lifetime; instrumentation sites hold them in function-local statics.
#ifndef EKTELO_OBS_METRICS_H_
#define EKTELO_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace ektelo::obs {

// ---------------------------------------------------------------- arming

/// Bit set in the process-global arming word.
enum ArmedBit : uint32_t {
  kTimingArmed = 1u << 0,  ///< Span reads the clock + feeds histograms
  kTraceArmed = 1u << 1,   ///< Span records into the current RequestTrace
};

namespace internal {
/// The one word every disarmed fast path loads.  Initialized from
/// EKTELO_OBS / EKTELO_TRACE before main() (metrics.cc); until then it
/// reads 0 = fully disarmed, which only skips pre-main span timing.
extern std::atomic<uint32_t> g_armed;
}  // namespace internal

/// The disarmed-fast-path check: one relaxed atomic load.
inline uint32_t ArmedFlags() {
  return internal::g_armed.load(std::memory_order_relaxed);
}

inline bool TimingEnabled() { return (ArmedFlags() & kTimingArmed) != 0; }
inline bool TraceEnabled() { return (ArmedFlags() & kTraceArmed) != 0; }

/// Programmatic overrides (tests, the overhead bench, the daemon's
/// --trace flag).  Thread-safe; take effect on the next ArmedFlags load.
void SetTimingEnabled(bool on);
void SetTraceEnabled(bool on);

// ----------------------------------------------------------------- clock

/// Monotonic nanoseconds since the first call in this process (one
/// fixed steady_clock base, so every span and log line shares an
/// origin).  Only called on armed paths.
uint64_t NowNs();

/// Small dense id of the calling thread (1-based, assigned on first
/// use).  Stable for the thread's lifetime; keys trace events and
/// selects metric shards.
uint32_t ThreadId();

// --------------------------------------------------------------- metrics

/// Shard count for counters and histograms.  Power of two; threads map
/// by ThreadId() & (kShards - 1), so up to kShards writers never share
/// a cacheline.
inline constexpr std::size_t kMetricShards = 16;

/// Monotone counter: lock-free sharded relaxed adds, aggregated on
/// read.  Constructible standalone (per-instance stats, e.g. a locally
/// built OperatorCache) or registered (Registry::GetCounter) — the
/// registered ones are what the Prometheus exporter walks.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(uint64_t n = 1) {
    shards_[ThreadId() & (kMetricShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  /// Zeroes every shard.  For per-instance and test counters only — a
  /// registered counter must stay monotone (scrapers read a reset as a
  /// process restart).
  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Last-write-wins double gauge (budget balances, cache occupancy,
/// degradation flags).  Stored as IEEE-754 bits in one atomic word.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    bits_.store(bits, std::memory_order_relaxed);
  }

  double Value() const {
    const uint64_t bits = bits_.load(std::memory_order_relaxed);
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

 private:
  std::atomic<uint64_t> bits_{0};  // bit pattern of +0.0
};

/// Fixed-log-bucket histogram: kBuckets base-2 buckets with
/// deterministic edges kMinEdge * 2^i (microsecond granularity at the
/// bottom, ~9.5 hours at the top when observing seconds) plus an
/// overflow bucket.  Edges are compile-time constants, so bucket
/// placement is a pure function of the observed value — goldens in
/// tests/obs_test.cc pin it.  Observation is a sharded relaxed
/// increment plus a CAS-add into the shard's sum; aggregation happens
/// on read.
class Histogram {
 public:
  static constexpr int kBuckets = 40;
  static constexpr double kMinEdge = 1e-6;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Upper edge of bucket i ("le" label): kMinEdge * 2^i.
  static double BucketEdge(int i);

  /// Index of the bucket counting `v`: the first i with
  /// v <= BucketEdge(i), or kBuckets for the +Inf overflow bucket.
  /// Non-finite and negative values land deterministically (NaN and
  /// anything above the top edge overflow; v <= 0 is bucket 0).
  static int BucketIndex(double v);

  void Observe(double v);

  /// Aggregated per-bucket counts; out[kBuckets] is the overflow.
  void Counts(uint64_t out[kBuckets + 1]) const;
  uint64_t Count() const;
  double Sum() const;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kBuckets + 1> counts{};
    std::atomic<uint64_t> sum_bits{0};  // double bits, CAS-accumulated
  };
  std::array<Shard, kMetricShards> shards_;
};

// -------------------------------------------------------------- registry

enum class MetricType : uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

/// One registered metric, for the exporter walk.  Exactly one of the
/// typed pointers is non-null, matching `type`.
struct MetricInfo {
  std::string name;    ///< Prometheus metric name (base, no labels)
  std::string labels;  ///< pre-rendered label pairs, e.g. `tier="disk"`
  std::string help;    ///< HELP text (shared per name; first wins)
  MetricType type = MetricType::kCounter;
  const Counter* counter = nullptr;
  const Gauge* gauge = nullptr;
  const Histogram* histogram = nullptr;
};

/// Name -> metric table.  Registration is idempotent on (name, labels):
/// the first call creates, later calls return the same reference — so
/// instrumentation sites just call Get* in a function-local static.
/// Thread-safe; references stay valid for the process lifetime.
class Registry {
 public:
  /// The process-wide instance every instrumentation site and the serve
  /// exporter share.
  static Registry& Global();

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& GetCounter(const std::string& name, const std::string& help,
                      const std::string& labels = "");
  Gauge& GetGauge(const std::string& name, const std::string& help,
                  const std::string& labels = "");
  Histogram& GetHistogram(const std::string& name, const std::string& help,
                          const std::string& labels = "");

  /// Snapshot of every registered metric in registration order (the
  /// exporter groups consecutive same-name entries under one TYPE/HELP
  /// header).  Pointers stay valid; values are read live by the caller.
  std::vector<MetricInfo> Metrics() const;

 private:
  struct Impl;
  Impl* impl_;  // leaked: registered metrics must outlive static dtors
};

}  // namespace ektelo::obs

#endif  // EKTELO_OBS_METRICS_H_
