// The EKTELO serving daemon.
//
//   ektelo_served --socket /tmp/ektelo.sock --ledger /var/lib/ektelo \
//                 --tenant alpha:1.0:41:256:10000 \
//                 --tenant beta:0.5:43:256:10000
//
// Each --tenant is name:eps_total:seed:n:scale — a tenant served from a
// deterministic synthetic table (MakeHistogram1D kGaussianMix with the
// given domain size and scale, generated from the seed).  eps_total is
// the budget registered on FIRST start; a ledger that already knows the
// tenant keeps its durable balance — restarting never refreshes spent
// budget.  Runtime knobs come from the EKTELO_SERVE_* environment (see
// README "Serving"); SIGINT/SIGTERM or a client shutdown request stop
// the daemon cleanly (drain queued work, checkpoint the ledger).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "serve/server.h"
#include "util/rng.h"

namespace {

volatile std::sig_atomic_t g_signal = 0;
void OnSignal(int) { g_signal = 1; }

std::optional<ektelo::serve::TenantSpec> ParseTenant(const std::string& spec) {
  // name:eps_total:seed:n:scale (trailing fields optional).
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = spec.find(':', start);
    parts.push_back(spec.substr(start, colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  if (parts.empty() || parts[0].empty() || parts.size() > 5)
    return std::nullopt;
  char* end = nullptr;
  double eps = 1.0;
  unsigned long long seed = 0, n = 256;
  double scale = 10000.0;
  if (parts.size() > 1) {
    eps = std::strtod(parts[1].c_str(), &end);
    if (end == parts[1].c_str() || *end != '\0' || !(eps >= 0.0))
      return std::nullopt;
  }
  if (parts.size() > 2) {
    seed = std::strtoull(parts[2].c_str(), &end, 10);
    if (end == parts[2].c_str() || *end != '\0') return std::nullopt;
  }
  if (parts.size() > 3) {
    n = std::strtoull(parts[3].c_str(), &end, 10);
    if (end == parts[3].c_str() || *end != '\0' || n == 0)
      return std::nullopt;
  }
  if (parts.size() > 4) {
    scale = std::strtod(parts[4].c_str(), &end);
    if (end == parts[4].c_str() || *end != '\0' || !(scale > 0.0))
      return std::nullopt;
  }
  ektelo::Rng rng{uint64_t(seed)};
  const ektelo::Vec hist = ektelo::MakeHistogram1D(
      ektelo::Shape1D::kGaussianMix, std::size_t(n), scale, &rng);
  return ektelo::serve::TenantSpec{parts[0],
                                   ektelo::TableFromHistogram(hist, "v"),
                                   uint64_t(seed), eps};
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH --ledger DIR "
               "[--tenant name:eps:seed:n:scale]...\n",
               argv0);
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  ektelo::serve::ServerOptions opts;
  std::vector<ektelo::serve::TenantSpec> tenants;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      opts.socket_path = argv[++i];
    } else if (arg == "--ledger" && i + 1 < argc) {
      opts.ledger_dir = argv[++i];
    } else if (arg == "--tenant" && i + 1 < argc) {
      auto t = ParseTenant(argv[++i]);
      if (!t.has_value()) {
        std::fprintf(stderr, "bad --tenant spec: %s\n", argv[i]);
        return Usage(argv[0]);
      }
      tenants.push_back(std::move(*t));
    } else {
      return Usage(argv[0]);
    }
  }
  if (opts.socket_path.empty() || opts.ledger_dir.empty())
    return Usage(argv[0]);
  if (tenants.empty()) {
    // A usable default pair for smoke runs.
    for (const char* spec : {"alpha:1.0:41:256:10000", "beta:1.0:43:256:10000"})
      if (auto t = ParseTenant(spec)) tenants.push_back(std::move(*t));
  }

  opts = ektelo::serve::ApplyServeEnv(opts);
  auto server =
      ektelo::serve::Server::Start(std::move(opts), std::move(tenants));
  if (!server.ok()) {
    std::fprintf(stderr, "ektelo_served: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::printf("ektelo_served: listening on %s\n",
              (*server)->socket_path().c_str());
  std::fflush(stdout);
  while (g_signal == 0 && !(*server)->stopped())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  (*server)->Stop();
  std::printf("ektelo_served: clean shutdown\n");
  return 0;
}
