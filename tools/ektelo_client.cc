// CLI client for the serving daemon.
//
//   ektelo_client --socket PATH invoke --tenant alpha --plan Identity
//       --eps 0.1 [--ranges 0-3,5-9] [--dims 16x16] [--known-total 1e4]
//       [--mode implicit|dense|sparse] [--stripe-dim K] [--no-coalesce]
//       [--request-id N]
//   ektelo_client --socket PATH stats [--prom | --json]
//   ektelo_client --socket PATH trace [--out trace.json]
//   ektelo_client --socket PATH shutdown
//
// Global flags: --timeout-ms N (per-attempt connect AND read deadline),
// --retries N (transport retries; invoke retries only coalescable
// requests — see serve/client.h).
//
// stats --prom prints the daemon's metrics registry in Prometheus text
// exposition format; --json prints the classic counters as one JSON
// object.  trace fetches the daemon's recent request traces as Chrome
// trace_event JSON (Perfetto-loadable); --out writes to a file instead
// of stdout.  Traces are empty unless the daemon runs with
// EKTELO_TRACE=1.
//
// Exit codes make refusals scriptable: 0 ok, 1 connection/protocol
// error, 2 budget exhausted, 3 queue full, 4 execution failed, 5 bad
// request, 6 server shutting down, 7 ledger durability failure (request
// failed closed), 8 deadline exceeded (server-side refusal OR client
// timeout after all retries).  Invoke prints a single summary line
// including a checksum of the estimate's exact bytes, so scripts can
// assert bitwise determinism across runs without parsing floats.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "serve/client.h"
#include "store/serialize.h"

namespace {

using ektelo::serve::InvokeRequest;
using ektelo::serve::ReplyCode;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--timeout-ms N] [--retries N]\n"
               "           invoke --tenant T --plan P --eps E\n"
               "           [--ranges a-b,c-d] [--dims AxBxC] [--mode m]\n"
               "           [--known-total X] [--stripe-dim K]\n"
               "           [--no-coalesce] [--request-id N]\n"
               "       %s --socket PATH stats [--prom | --json]\n"
               "       %s --socket PATH trace [--out FILE]\n"
               "       %s --socket PATH shutdown\n",
               argv0, argv0, argv0, argv0);
  return 64;
}

bool ParseRanges(const std::string& s, std::vector<ektelo::RangeQuery>* out) {
  std::size_t start = 0;
  while (start < s.size()) {
    std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    const std::string tok = s.substr(start, comma - start);
    const std::size_t dash = tok.find('-');
    if (dash == std::string::npos || dash == 0 || dash + 1 >= tok.size())
      return false;
    char* end = nullptr;
    const unsigned long long lo = std::strtoull(tok.c_str(), &end, 10);
    if (end != tok.c_str() + dash) return false;
    const unsigned long long hi =
        std::strtoull(tok.c_str() + dash + 1, &end, 10);
    if (*end != '\0' || hi < lo) return false;
    out->push_back({std::size_t(lo), std::size_t(hi)});
    start = comma + 1;
  }
  return !out->empty();
}

bool ParseDims(const std::string& s, std::vector<std::size_t>* out) {
  std::size_t start = 0;
  while (start < s.size()) {
    std::size_t x = s.find('x', start);
    if (x == std::string::npos) x = s.size();
    char* end = nullptr;
    const std::string tok = s.substr(start, x - start);
    const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0' || v == 0) return false;
    out->push_back(std::size_t(v));
    start = x + 1;
  }
  return !out->empty();
}

int CodeToExit(ReplyCode code) {
  switch (code) {
    case ReplyCode::kOk: return 0;
    case ReplyCode::kBadRequest: return 5;
    case ReplyCode::kBudgetExhausted: return 2;
    case ReplyCode::kQueueFull: return 3;
    case ReplyCode::kExecutionFailed: return 4;
    case ReplyCode::kShuttingDown: return 6;
    case ReplyCode::kDurabilityError: return 7;
    case ReplyCode::kDeadlineExceeded: return 8;
  }
  return 1;
}

const char* CodeName(ReplyCode code) {
  switch (code) {
    case ReplyCode::kOk: return "OK";
    case ReplyCode::kBadRequest: return "BAD_REQUEST";
    case ReplyCode::kBudgetExhausted: return "BUDGET_EXHAUSTED";
    case ReplyCode::kQueueFull: return "QUEUE_FULL";
    case ReplyCode::kExecutionFailed: return "EXECUTION_FAILED";
    case ReplyCode::kShuttingDown: return "SHUTTING_DOWN";
    case ReplyCode::kDurabilityError: return "DURABILITY_ERROR";
    case ReplyCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

/// Connection-level failures: a client-side timeout is its own exit
/// code (8) so scripts can tell "slow/hung daemon" from "no daemon".
int StatusToExit(const ektelo::Status& s) {
  return s.code() == ektelo::StatusCode::kDeadlineExceeded ? 8 : 1;
}

/// Checksum over the estimate's IEEE-754 bit patterns: equal checksums
/// across runs certify bitwise-identical answers.
uint64_t EstimateChecksum(const ektelo::Vec& v) {
  ektelo::store::ByteWriter w;
  w.F64s(v);
  return ektelo::store::Checksum64(w.bytes());
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path, command;
  ektelo::serve::ClientOptions copts;
  InvokeRequest req;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    char* end = nullptr;
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      const long v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v < 0) return Usage(argv[0]);
      copts.connect_timeout_ms = int(v);
      copts.read_timeout_ms = int(v);
    } else if (arg == "--retries" && i + 1 < argc) {
      const long v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v < 0) return Usage(argv[0]);
      copts.max_retries = int(v);
    } else if (arg == "invoke" || arg == "stats" || arg == "trace" ||
               arg == "shutdown") {
      command = arg;
      ++i;
      break;
    } else {
      return Usage(argv[0]);
    }
  }
  if (socket_path.empty() || command.empty()) return Usage(argv[0]);

  std::string stats_format = "text";  // stats: text | prom | json
  std::string trace_out;              // trace: output path ("" = stdout)
  if (command == "stats" || command == "trace") {
    for (; i < argc; ++i) {
      const std::string arg = argv[i];
      if (command == "stats" && arg == "--prom") {
        stats_format = "prom";
      } else if (command == "stats" && arg == "--json") {
        stats_format = "json";
      } else if (command == "trace" && arg == "--out" && i + 1 < argc) {
        trace_out = argv[++i];
      } else {
        return Usage(argv[0]);
      }
    }
  }

  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    char* end = nullptr;
    if (arg == "--tenant" && i + 1 < argc) {
      req.tenant = argv[++i];
    } else if (arg == "--plan" && i + 1 < argc) {
      req.plan = argv[++i];
    } else if (arg == "--eps" && i + 1 < argc) {
      req.eps = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0') return Usage(argv[0]);
    } else if (arg == "--ranges" && i + 1 < argc) {
      if (!ParseRanges(argv[++i], &req.ranges)) return Usage(argv[0]);
    } else if (arg == "--dims" && i + 1 < argc) {
      if (!ParseDims(argv[++i], &req.dims)) return Usage(argv[0]);
    } else if (arg == "--known-total" && i + 1 < argc) {
      req.known_total = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0') return Usage(argv[0]);
    } else if (arg == "--stripe-dim" && i + 1 < argc) {
      req.stripe_dim = std::size_t(std::strtoull(argv[++i], &end, 10));
      if (end == argv[i] || *end != '\0') return Usage(argv[0]);
    } else if (arg == "--mode" && i + 1 < argc) {
      const std::string m = argv[++i];
      if (m == "dense") req.mode = 0;
      else if (m == "sparse") req.mode = 1;
      else if (m == "implicit") req.mode = 2;
      else return Usage(argv[0]);
    } else if (arg == "--no-coalesce") {
      req.coalesce = false;
    } else if (arg == "--request-id" && i + 1 < argc) {
      req.request_id = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') return Usage(argv[0]);
    } else {
      return Usage(argv[0]);
    }
  }

  auto client = ektelo::serve::Client::Connect(socket_path, copts);
  if (!client.ok()) {
    std::fprintf(stderr, "ektelo_client: %s\n",
                 client.status().ToString().c_str());
    return StatusToExit(client.status());
  }

  if (command == "shutdown") {
    const ektelo::Status s = client->Shutdown();
    if (!s.ok()) {
      std::fprintf(stderr, "ektelo_client: %s\n", s.ToString().c_str());
      return StatusToExit(s);
    }
    std::printf("shutdown acknowledged\n");
    return 0;
  }

  if (command == "trace") {
    auto json = client->Trace();
    if (!json.ok()) {
      std::fprintf(stderr, "ektelo_client: %s\n",
                   json.status().ToString().c_str());
      return StatusToExit(json.status());
    }
    if (trace_out.empty()) {
      std::printf("%s\n", json->c_str());
      return 0;
    }
    std::FILE* f = std::fopen(trace_out.c_str(), "w");
    if (f == nullptr ||
        std::fwrite(json->data(), 1, json->size(), f) != json->size() ||
        std::fclose(f) != 0) {
      if (f != nullptr) std::fclose(f);
      std::fprintf(stderr, "ektelo_client: cannot write %s\n",
                   trace_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu bytes to %s\n", json->size(),
                 trace_out.c_str());
    return 0;
  }

  if (command == "stats" && stats_format == "prom") {
    auto text = client->StatsProm();
    if (!text.ok()) {
      std::fprintf(stderr, "ektelo_client: %s\n",
                   text.status().ToString().c_str());
      return StatusToExit(text.status());
    }
    std::fwrite(text->data(), 1, text->size(), stdout);
    return 0;
  }

  if (command == "stats") {
    auto stats = client->Stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "ektelo_client: %s\n",
                   stats.status().ToString().c_str());
      return StatusToExit(stats.status());
    }
    if (stats_format == "json") {
      std::printf(
          "{\"received\":%llu,\"admitted\":%llu,\"executions\":%llu,"
          "\"coalesced\":%llu,\"refused_budget\":%llu,"
          "\"refused_queue\":%llu,\"refused_bad\":%llu,"
          "\"refused_durability\":%llu,\"refused_deadline\":%llu,"
          "\"cache_hits\":%llu,\"cache_disk_hits\":%llu,"
          "\"rewrite_searches\":%llu,\"beam_expansions\":%llu,"
          "\"tree_hits\":%llu,\"disk_degraded\":%llu,"
          "\"disk_io_errors\":%llu,\"disk_write_drops\":%llu,"
          "\"tenants\":[",
          (unsigned long long)stats->received,
          (unsigned long long)stats->admitted,
          (unsigned long long)stats->executions,
          (unsigned long long)stats->coalesced,
          (unsigned long long)stats->refused_budget,
          (unsigned long long)stats->refused_queue,
          (unsigned long long)stats->refused_bad,
          (unsigned long long)stats->refused_durability,
          (unsigned long long)stats->refused_deadline,
          (unsigned long long)stats->cache_hits,
          (unsigned long long)stats->cache_disk_hits,
          (unsigned long long)stats->rewrite_searches,
          (unsigned long long)stats->beam_expansions,
          (unsigned long long)stats->tree_hits,
          (unsigned long long)stats->disk_degraded,
          (unsigned long long)stats->disk_io_errors,
          (unsigned long long)stats->disk_write_drops);
      // Tenant names reach the wire validated by the daemon; escape
      // the JSON-special characters anyway so output always parses.
      bool first = true;
      for (const auto& t : stats->tenants) {
        std::string name;
        for (char c : t.name) {
          if (c == '"' || c == '\\') name += '\\';
          name += c;
        }
        std::printf("%s{\"name\":\"%s\",\"total\":%.9g,\"spent\":%.9g}",
                    first ? "" : ",", name.c_str(), t.total, t.spent);
        first = false;
      }
      std::printf("]}\n");
      return 0;
    }
    std::printf(
        "received=%llu admitted=%llu executions=%llu coalesced=%llu "
        "refused_budget=%llu refused_queue=%llu refused_bad=%llu "
        "refused_durability=%llu refused_deadline=%llu "
        "cache_hits=%llu cache_disk_hits=%llu rewrite_searches=%llu "
        "beam_expansions=%llu tree_hits=%llu disk_degraded=%llu "
        "disk_io_errors=%llu disk_write_drops=%llu\n",
        (unsigned long long)stats->received,
        (unsigned long long)stats->admitted,
        (unsigned long long)stats->executions,
        (unsigned long long)stats->coalesced,
        (unsigned long long)stats->refused_budget,
        (unsigned long long)stats->refused_queue,
        (unsigned long long)stats->refused_bad,
        (unsigned long long)stats->refused_durability,
        (unsigned long long)stats->refused_deadline,
        (unsigned long long)stats->cache_hits,
        (unsigned long long)stats->cache_disk_hits,
        (unsigned long long)stats->rewrite_searches,
        (unsigned long long)stats->beam_expansions,
        (unsigned long long)stats->tree_hits,
        (unsigned long long)stats->disk_degraded,
        (unsigned long long)stats->disk_io_errors,
        (unsigned long long)stats->disk_write_drops);
    for (const auto& t : stats->tenants)
      std::printf("tenant=%s total=%.9g spent=%.9g\n", t.name.c_str(),
                  t.total, t.spent);
    return 0;
  }

  if (req.tenant.empty() || req.plan.empty()) return Usage(argv[0]);
  auto reply = client->Invoke(req);
  if (!reply.ok()) {
    std::fprintf(stderr, "ektelo_client: %s\n",
                 reply.status().ToString().c_str());
    return StatusToExit(reply.status());
  }
  std::printf(
      "code=%s coalesced=%d eps_charged=%.9g n=%zu "
      "estimate_checksum=%016llx%s%s\n",
      CodeName(reply->code), reply->coalesced ? 1 : 0, reply->eps_charged,
      std::size_t(reply->estimate.size()),
      (unsigned long long)EstimateChecksum(reply->estimate),
      reply->message.empty() ? "" : " message=",
      reply->message.c_str());
  return CodeToExit(reply->code);
}
