// Crash-consistency matrix runner (see serve/torture.h).
//
//   ektelo_crashmatrix [--dir DIR] [--quick] [--max N]
//
// Traces one clean run of the torture workload, then re-runs it in a
// forked child per I/O operation with a simulated kill (std::_Exit) at
// that operation, reopening and verifying the ledger + store after each
// crash.  --quick crashes only at the first hit of each distinct
// failpoint site (the CI preset — still covers every site); --max caps
// the number of crash points.  Exit 0 when every invariant held at every
// crash point, 1 otherwise.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/torture.h"

int main(int argc, char** argv) {
  ektelo::serve::torture::CrashMatrixOptions opts;
  opts.dir = "/tmp/ektelo_crashmatrix";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    char* end = nullptr;
    if (arg == "--dir" && i + 1 < argc) {
      opts.dir = argv[++i];
    } else if (arg == "--quick") {
      opts.quick = true;
    } else if (arg == "--max" && i + 1 < argc) {
      const unsigned long long v = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::fprintf(stderr, "bad --max value\n");
        return 64;
      }
      opts.max_crashes = std::size_t(v);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--dir DIR] [--quick] [--max N]\n", argv[0]);
      return 64;
    }
  }

  const ektelo::serve::torture::CrashMatrixResult res =
      ektelo::serve::torture::RunCrashMatrix(opts);

  std::printf("clean-run I/O operations: %zu\n", res.total_ops);
  std::printf("crash points exercised:   %zu%s\n", res.crashes,
              opts.quick ? " (quick: first hit of each site)" : "");
  std::printf("distinct sites covered:   %zu\n", res.sites_covered.size());
  for (const std::string& s : res.sites_covered)
    std::printf("  site %s\n", s.c_str());
  if (!res.violations.empty()) {
    std::printf("INVARIANT VIOLATIONS: %zu\n", res.violations.size());
    for (const std::string& v : res.violations)
      std::printf("  VIOLATION %s\n", v.c_str());
    return 1;
  }
  std::printf("all invariants held at every crash point\n");
  return res.ok() ? 0 : 1;
}
