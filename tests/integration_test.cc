// Cross-module integration tests: the reduction wrapper (Sec. 8 end to
// end), multi-step kernel pipelines with mixed transformations, transcript
// bookkeeping across a whole plan, and statistical regression checks that
// plan errors match their analytic noise levels.
#include <cmath>

#include "data/csv.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "matrix/implicit_ops.h"
#include "ops/inference.h"
#include "ops/selection.h"
#include "plans/plans.h"
#include "plans/reduction_wrapper.h"
#include "workload/workloads.h"

namespace ektelo {
namespace {

struct Env {
  ProtectedKernel kernel;
  PlanContext ctx;
  Vec x_true;

  Env(Vec hist, double eps, uint64_t seed, Rng* rng)
      : kernel(TableFromHistogram(hist, "v"), eps, seed),
        x_true(std::move(hist)) {
    auto x = kernel.TVectorize(kernel.root());
    ctx.kernel = &kernel;
    ctx.x = *x;
    ctx.dims = {x_true.size()};
    ctx.eps = eps;
    ctx.rng = rng;
  }
};

TEST(ReductionWrapperTest, PreservesWorkloadAnswersStructurally) {
  // On a workload that merges cells, the wrapped Identity plan answers
  // the workload as well as (or better than) the unwrapped plan.
  Rng rng(1);
  const std::size_t n = 1024;
  Vec hist = MakeHistogram1D(Shape1D::kClustered, n, 50000.0, &rng);
  auto ranges = RandomRanges(40, n, 64, &rng);  // sparse coverage
  auto w = RangeQueryOp(ranges, n);

  double err_plain = 0.0, err_wrapped = 0.0;
  for (int t = 0; t < 6; ++t) {
    Env e1(hist, 0.1, 100 + t, &rng);
    Env e2(hist, 0.1, 200 + t, &rng);
    auto x_plain = RunIdentityPlan(e1.ctx);
    auto x_wrapped = RunWithWorkloadReduction(
        e2.ctx, *w,
        [](const PlanContext& inner, const Partition&) {
          return RunIdentityPlan(inner);
        });
    ASSERT_TRUE(x_plain.ok() && x_wrapped.ok());
    err_plain += Rmse(w->Apply(*x_plain), w->Apply(e1.x_true));
    err_wrapped += Rmse(w->Apply(*x_wrapped), w->Apply(e2.x_true));
  }
  // Thm 8.4 direction: reduction helps when the workload merges cells.
  EXPECT_LT(err_wrapped, err_plain);
}

TEST(ReductionWrapperTest, ExpandsToFullDomain) {
  Rng rng(2);
  Vec hist(64, 2.0);
  Env env(hist, 1.0, 3, &rng);
  auto w = RangeQueryOp({{0, 31}, {32, 63}}, 64);
  auto xhat = RunWithWorkloadReduction(
      env.ctx, *w, [](const PlanContext& inner, const Partition& p) {
        EXPECT_EQ(p.num_groups(), 2u);
        return RunIdentityPlan(inner);
      });
  ASSERT_TRUE(xhat.ok());
  EXPECT_EQ(xhat->size(), 64u);
  // Uniform expansion within the two groups.
  for (std::size_t i = 1; i < 32; ++i)
    EXPECT_DOUBLE_EQ((*xhat)[i], (*xhat)[0]);
}

TEST(ReductionWrapperTest, RejectsMismatchedWorkload) {
  Rng rng(3);
  Vec hist(16, 1.0);
  Env env(hist, 1.0, 4, &rng);
  auto w = RangeQueryOp({{0, 3}}, 8);  // wrong domain
  auto r = RunWithWorkloadReduction(
      env.ctx, *w, [](const PlanContext& inner, const Partition&) {
        return RunIdentityPlan(inner);
      });
  EXPECT_FALSE(r.ok());
}

TEST(IntegrationTest, ChainedTransformStabilityComposes) {
  // Where(1) -> GroupBy(2) -> Vectorize(1) -> VTransform(3) should charge
  // 1*2*1*3 = 6x the measurement eps at the root.
  Table t(Schema({{"a", 4}, {"b", 3}}));
  for (uint32_t i = 0; i < 24; ++i) t.AppendRow({i % 4, i % 3});
  ProtectedKernel k(std::move(t), 10.0, 5);
  auto w = k.TWhere(k.root(), Predicate::True().And("a", CmpOp::kLe, 2));
  auto g = k.TGroupBy(*w, {"a"});
  auto x = k.TVectorize(*g);
  // 3-stable transform: each output sums three cells scaled by 3... use a
  // matrix with max column L1 norm 3.
  DenseMatrix m(1, 12);
  for (int j = 0; j < 1; ++j) m.At(0, 0) = 3.0;
  auto y = k.VTransform(*x, MakeDense(m));
  ASSERT_TRUE(y.ok());
  ASSERT_TRUE(k.VectorLaplace(*y, *MakeIdentityOp(1), 0.1).ok());
  EXPECT_NEAR(k.BudgetConsumed(), 0.1 * 1 * 2 * 1 * 3, 1e-9);
}

TEST(IntegrationTest, TranscriptCoversWholePlan) {
  Rng rng(6);
  Vec hist = MakeHistogram1D(Shape1D::kStep, 128, 5000.0, &rng);
  Env env(hist, 0.2, 7, &rng);
  auto xhat = RunDawaPlan(env.ctx, RandomRanges(50, 128, 32, &rng));
  ASSERT_TRUE(xhat.ok());
  // DAWA = partition measurement + strategy measurement.
  ASSERT_EQ(env.kernel.transcript().size(), 2u);
  double eps_sum = 0.0;
  for (const auto& e : env.kernel.transcript()) eps_sum += e.eps;
  EXPECT_NEAR(eps_sum, 0.2, 1e-9);
}

TEST(IntegrationTest, IdentityPlanErrorMatchesAnalyticNoise) {
  // Identity at eps: per-cell Laplace(1/eps), RMSE should be ~sqrt(2)/eps.
  const double eps = 0.5;
  const std::size_t n = 512;
  Rng rng(8);
  Vec hist = MakeHistogram1D(Shape1D::kUniform, n, 10000.0, &rng);
  double rmse_acc = 0.0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    Env env(hist, eps, 1000 + t, &rng);
    auto xhat = RunIdentityPlan(env.ctx);
    ASSERT_TRUE(xhat.ok());
    rmse_acc += Rmse(*xhat, env.x_true);
  }
  const double expected = std::sqrt(2.0) / eps;
  EXPECT_NEAR(rmse_acc / trials, expected, 0.25 * expected);
}

TEST(IntegrationTest, UniformPlanErrorMatchesAnalyticNoise) {
  // Uniform: total measured at eps, spread over n cells; per-cell RMSE of
  // the noise component ~ sqrt(2)/(eps n) for uniform data.
  const double eps = 0.5;
  const std::size_t n = 256;
  Vec hist(n, 20.0);
  Rng rng(9);
  double rmse_acc = 0.0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    Env env(hist, eps, 2000 + t, &rng);
    auto xhat = RunUniformPlan(env.ctx);
    ASSERT_TRUE(xhat.ok());
    rmse_acc += Rmse(*xhat, env.x_true);
  }
  const double expected = std::sqrt(2.0) / (eps * double(n));
  EXPECT_NEAR(rmse_acc / trials, expected, 0.5 * expected);
}

TEST(IntegrationTest, EpsErrorTradeoffIsMonotone) {
  // More budget, less error (checked on averages across seeds).
  Rng rng(10);
  const std::size_t n = 256;
  Vec hist = MakeHistogram1D(Shape1D::kBimodal, n, 20000.0, &rng);
  auto prefix = MakePrefixOp(n);
  Vec errs;
  for (double eps : {0.01, 0.1, 1.0}) {
    double acc = 0.0;
    for (int t = 0; t < 8; ++t) {
      Env env(hist, eps, 3000 + t, &rng);
      auto xhat = RunH2Plan(env.ctx);
      ASSERT_TRUE(xhat.ok());
      acc += Rmse(prefix->Apply(*xhat), prefix->Apply(env.x_true));
    }
    errs.push_back(acc);
  }
  EXPECT_GT(errs[0], errs[1]);
  EXPECT_GT(errs[1], errs[2]);
}

TEST(IntegrationTest, PlanComposesWithPartitionSubplans) {
  // Split the domain, run different subplans per part, stitch with global
  // inference — the freedom the client/kernel split is designed for.
  Rng rng(11);
  const std::size_t n = 256;
  Vec hist = MakeHistogram1D(Shape1D::kSparseSpikes, n, 20000.0, &rng);
  Env env(hist, 0.4, 12, &rng);
  Partition halves = Partition::FromIntervals({0, n / 2}, n);
  auto children = env.kernel.VSplitByPartition(env.ctx.x, halves);
  ASSERT_TRUE(children.ok());
  MeasurementSet mset;
  // Left half: identity; right half: H2.  Both full eps in parallel.
  {
    auto m = IdentitySelect(n / 2);
    auto y = env.kernel.VectorLaplace((*children)[0], *m, 0.4);
    ASSERT_TRUE(y.ok());
    // Map to full domain: columns 0..n/2.
    std::vector<Triplet> t;
    for (std::size_t i = 0; i < n / 2; ++i) t.push_back({i, i, 1.0});
    mset.Add(MakeSparse(CsrMatrix::FromTriplets(n / 2, n, std::move(t))),
             *y, 1.0 / 0.4);
  }
  {
    auto m = H2Select(n / 2);
    auto y = env.kernel.VectorLaplace((*children)[1], *m, 0.4);
    ASSERT_TRUE(y.ok());
    CsrMatrix local = m->MaterializeSparse();
    std::vector<Triplet> t;
    for (std::size_t i = 0; i < local.rows(); ++i)
      for (std::size_t k = local.indptr()[i]; k < local.indptr()[i + 1];
           ++k)
        t.push_back({i, n / 2 + local.indices()[k], local.values()[k]});
    mset.Add(MakeSparse(CsrMatrix::FromTriplets(local.rows(), n,
                                                std::move(t))),
             *y, m->SensitivityL1() / 0.4);
  }
  EXPECT_NEAR(env.kernel.BudgetConsumed(), 0.4, 1e-9);
  Vec xhat = LeastSquaresInference(mset);
  // Loose sanity cap on the seeded noise draw (the load-bearing assertion
  // is the parallel-composition budget above); sized for the per-source
  // noise streams' draws at this seed with margin.
  EXPECT_LT(Rmse(xhat, env.x_true), 22.0);
}

TEST(IntegrationTest, CsvToDpPipeline) {
  // Full pipeline: CSV text -> protected kernel -> DP estimate.
  Schema schema({{"v", 8}});
  std::string csv = "v\n";
  for (int i = 0; i < 80; ++i) csv += std::to_string(i % 8) + "\n";
  auto table = TableFromCsv(csv, schema);
  ASSERT_TRUE(table.ok());
  ProtectedKernel kernel(*table, 5.0, 13);
  auto x = kernel.TVectorize(kernel.root());
  auto y = kernel.VectorLaplace(*x, *MakeIdentityOp(8), 5.0);
  ASSERT_TRUE(y.ok());
  for (double v : *y) EXPECT_NEAR(v, 10.0, 5.0);
}

}  // namespace
}  // namespace ektelo
