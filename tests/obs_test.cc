// Tests for the observability layer (obs/): deterministic histogram
// buckets, lock-free counter aggregation under contention, span
// nesting and attribute capture, exporter goldens, the structured-log
// rate limiter, and the registry-wide bitwise-invariance contract
// (observability on/off never changes a plan's output bits).
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "gtest/gtest.h"
#include "kernel/kernel.h"
#include "obs/export.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plans/plans.h"

namespace ektelo {
namespace {

// ------------------------------------------------------------- histogram

TEST(ObsHistogramTest, BucketEdgesAreDeterministicPowersOfTwo) {
  EXPECT_EQ(obs::Histogram::BucketEdge(0), 1e-6);
  EXPECT_EQ(obs::Histogram::BucketEdge(1), 2e-6);
  EXPECT_EQ(obs::Histogram::BucketEdge(10), 1.024e-3);
  for (int i = 0; i + 1 < obs::Histogram::kBuckets; ++i)
    EXPECT_EQ(obs::Histogram::BucketEdge(i + 1),
              2.0 * obs::Histogram::BucketEdge(i))
        << i;
}

TEST(ObsHistogramTest, BucketIndexIsTotalAndDeterministic) {
  using H = obs::Histogram;
  EXPECT_EQ(H::BucketIndex(0.0), 0);
  EXPECT_EQ(H::BucketIndex(-1.0), 0);
  EXPECT_EQ(H::BucketIndex(1e-6), 0);  // on-edge lands low (le semantics)
  EXPECT_EQ(H::BucketIndex(2e-6), 1);
  EXPECT_EQ(H::BucketIndex(3e-6), 2);
  EXPECT_EQ(H::BucketIndex(0.5), 19);  // 2^19 * 1e-6 = 0.524288
  EXPECT_EQ(H::BucketIndex(H::BucketEdge(H::kBuckets - 1)), H::kBuckets - 1);
  EXPECT_EQ(H::BucketIndex(2.0 * H::BucketEdge(H::kBuckets - 1)),
            H::kBuckets);  // overflow
  EXPECT_EQ(H::BucketIndex(std::numeric_limits<double>::infinity()),
            H::kBuckets);
  EXPECT_EQ(H::BucketIndex(std::numeric_limits<double>::quiet_NaN()),
            H::kBuckets);
}

TEST(ObsHistogramTest, ObserveAccumulatesCountsAndSum) {
  obs::Histogram h;
  h.Observe(0.25);  // bucket 18 (0.262144)
  h.Observe(0.5);   // bucket 19 (0.524288)
  h.Observe(0.5);
  uint64_t counts[obs::Histogram::kBuckets + 1];
  h.Counts(counts);
  EXPECT_EQ(counts[18], 1u);
  EXPECT_EQ(counts[19], 2u);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.Sum(), 1.25);  // 0.25 + 0.5 + 0.5 is exact in binary
}

// -------------------------------------------------------------- counters

TEST(ObsCounterTest, AggregatesShardedIncrementsAcrossThreads) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Inc();
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
  c.Inc(42);
  EXPECT_EQ(c.Value(), kThreads * kPerThread + 42);
}

TEST(ObsRegistryTest, RegistrationIsIdempotentOnNameAndLabels) {
  obs::Registry reg;
  obs::Counter& a = reg.GetCounter("x", "help", "k=\"1\"");
  obs::Counter& b = reg.GetCounter("x", "ignored later", "k=\"1\"");
  obs::Counter& c = reg.GetCounter("x", "help", "k=\"2\"");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  a.Inc();
  EXPECT_EQ(b.Value(), 1u);
  EXPECT_EQ(reg.Metrics().size(), 2u);
}

// -------------------------------------------------------------- exporter

TEST(ObsExportTest, PrometheusTextGolden) {
  obs::Registry reg;
  obs::Counter& hits = reg.GetCounter("req", "Requests", "event=\"hit\"");
  obs::Counter& misses = reg.GetCounter("req", "Requests", "event=\"miss\"");
  hits.Inc(3);
  misses.Inc();
  reg.GetGauge("temp", "Temp").Set(1.5);
  obs::Histogram& lat = reg.GetHistogram("lat", "Latency");
  lat.Observe(0.25);
  lat.Observe(0.5);
  const std::string want =
      "# HELP req_total Requests\n"
      "# TYPE req_total counter\n"
      "req_total{event=\"hit\"} 3\n"
      "req_total{event=\"miss\"} 1\n"
      "# HELP temp Temp\n"
      "# TYPE temp gauge\n"
      "temp 1.5\n"
      "# HELP lat Latency\n"
      "# TYPE lat histogram\n"
      "lat_bucket{le=\"1e-06\"} 0\n"
      "lat_bucket{le=\"0.262144\"} 1\n"
      "lat_bucket{le=\"0.524288\"} 2\n"
      "lat_bucket{le=\"+Inf\"} 2\n"
      "lat_sum 0.75\n"
      "lat_count 2\n";
  EXPECT_EQ(obs::PrometheusText(reg), want);
}

TEST(ObsExportTest, ChromeTraceJsonGolden) {
  auto trace = std::make_shared<obs::RequestTrace>();
  trace->request_id = "7";
  trace->tenant = "alpha";
  trace->plan = "H2";
  obs::TraceEvent ev;
  ev.name = "solver.cg";
  ev.cat = "solver";
  ev.start_ns = 1500;
  ev.dur_ns = 2750;
  ev.tid = 3;
  ev.n_attrs = 2;
  ev.attrs[0] = obs::TraceAttr{"n", nullptr, 64.0};
  ev.attrs[1] = obs::TraceAttr{"tier", "mem", 0.0};
  trace->Record(ev);
  const std::string want =
      "{\"traceEvents\":["
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"request 7 tenant=alpha plan=H2\"}},"
      "{\"name\":\"solver.cg\",\"cat\":\"solver\",\"ph\":\"X\","
      "\"ts\":1.500,\"dur\":2.750,\"pid\":1,\"tid\":3,"
      "\"args\":{\"n\":64,\"tier\":\"mem\"}}"
      "]}";
  EXPECT_EQ(obs::ChromeTraceJson({trace}), want);
}

// ----------------------------------------------------------------- spans

TEST(ObsSpanTest, NestedSpansRecordInnerFirstWithAttrs) {
  obs::SetTraceEnabled(true);
  obs::RequestTrace trace;
  {
    obs::ScopedTraceContext ctx(&trace);
    obs::Span outer("outer", "test");
    outer.Attr("kind", "parent");
    {
      obs::Span inner("inner", "test");
      inner.Attr("n", 64.0);
    }
  }
  obs::SetTraceEnabled(false);
  const std::vector<obs::TraceEvent> events = trace.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "outer");
  // The child nests inside the parent's interval.
  EXPECT_GE(events[0].start_ns, events[1].start_ns);
  EXPECT_LE(events[0].start_ns + events[0].dur_ns,
            events[1].start_ns + events[1].dur_ns);
  ASSERT_EQ(events[0].n_attrs, 1);
  EXPECT_STREQ(events[0].attrs[0].key, "n");
  EXPECT_EQ(events[0].attrs[0].num, 64.0);
  ASSERT_EQ(events[1].n_attrs, 1);
  EXPECT_STREQ(events[1].attrs[0].str, "parent");
  EXPECT_GT(events[0].tid, 0u);
}

TEST(ObsSpanTest, DisarmedTraceRecordsNothingEvenWithContext) {
  obs::SetTraceEnabled(false);
  obs::RequestTrace trace;
  obs::ScopedTraceContext ctx(&trace);
  {
    obs::Span span("quiet", "test");
    span.Attr("n", 1.0);
  }
  obs::RecordManualSpan("quiet.manual", "test", 10, 20);
  EXPECT_TRUE(trace.Events().empty());
}

TEST(ObsSpanTest, RingDropsNewEventsWhenFullAndCountsThem) {
  obs::SetTraceEnabled(true);
  obs::RequestTrace trace(/*capacity=*/4);
  {
    obs::ScopedTraceContext ctx(&trace);
    for (int i = 0; i < 6; ++i) obs::Span span("s", "test");
  }
  obs::SetTraceEnabled(false);
  EXPECT_EQ(trace.Events().size(), 4u);
  EXPECT_EQ(trace.DroppedCount(), 2u);
}

TEST(ObsSpanTest, ManualSpanUsesProvidedEndpoints) {
  obs::SetTraceEnabled(true);
  obs::RequestTrace trace;
  {
    obs::ScopedTraceContext ctx(&trace);
    obs::RecordManualSpan("queue_wait", "serve", 1000, 4000);
  }
  obs::SetTraceEnabled(false);
  const auto events = trace.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].start_ns, 1000u);
  EXPECT_EQ(events[0].dur_ns, 3000u);
}

// ------------------------------------------------------------------- log

TEST(ObsLogTest, RateLimiterSuppressesRepeatsPerEvent) {
  obs::ResetLogRateLimiterForTest();
  // First emission always logs; an immediate repeat within the interval
  // is suppressed; a different event is independent.
  EXPECT_TRUE(obs::LogEvery(obs::Severity::kWarn, "obs_test_evt_a", 3600.0,
                            {{"k", "v"}}));
  EXPECT_FALSE(obs::LogEvery(obs::Severity::kWarn, "obs_test_evt_a", 3600.0,
                             {{"k", "v"}}));
  EXPECT_TRUE(obs::LogEvery(obs::Severity::kWarn, "obs_test_evt_b", 3600.0,
                            {{"k", "v"}}));
}

// ------------------------------------------------- bitwise invariance

Vec RunH2Once() {
  Rng rng(7);
  Vec hist = MakeHistogram1D(Shape1D::kGaussianMix, 128, 5000.0, &rng);
  ProtectedKernel kernel(TableFromHistogram(hist, "v"), 1.0, 42);
  auto x = kernel.TVectorize(kernel.root());
  EXPECT_TRUE(x.ok());
  PlanContext ctx;
  ctx.kernel = &kernel;
  ctx.x = *x;
  ctx.dims = {128};
  ctx.eps = 1.0;
  Rng client_rng(99);
  ctx.rng = &client_rng;
  auto xhat = RunH2Plan(ctx);
  EXPECT_TRUE(xhat.ok());
  return xhat.ok() ? *xhat : Vec{};
}

TEST(ObsInvarianceTest, PlanOutputBitsIdenticalWithObservabilityOnOrOff) {
  // Baseline: timing armed (the default), tracing off.
  obs::SetTimingEnabled(true);
  obs::SetTraceEnabled(false);
  const Vec baseline = RunH2Once();
  ASSERT_FALSE(baseline.empty());

  // Fully disarmed.
  obs::SetTimingEnabled(false);
  const Vec disarmed = RunH2Once();

  // Tracing armed with a live trace capturing every span.
  obs::SetTimingEnabled(true);
  obs::SetTraceEnabled(true);
  auto trace = std::make_shared<obs::RequestTrace>();
  Vec traced;
  {
    obs::ScopedTraceContext ctx(trace.get());
    traced = RunH2Once();
  }
  obs::SetTraceEnabled(false);

  ASSERT_EQ(disarmed.size(), baseline.size());
  ASSERT_EQ(traced.size(), baseline.size());
  EXPECT_EQ(std::memcmp(disarmed.data(), baseline.data(),
                        baseline.size() * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(traced.data(), baseline.data(),
                        baseline.size() * sizeof(double)),
            0);
  // The traced run must actually have recorded spans — otherwise this
  // test would pass vacuously with tracing broken.
  EXPECT_FALSE(trace->Events().empty());
}

}  // namespace
}  // namespace ektelo
