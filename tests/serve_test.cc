// The serving daemon end to end over its real unix socket: multi-tenant
// admission, restart durability (spent budget survives bit-for-bit),
// exhaustion refused before any kernel-side charge, identical-request
// coalescing hitting one execution, bitwise response determinism across
// EKTELO_THREADS settings, malformed-frame rejection, and queue-full
// backpressure.
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "data/generators.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/failpoint.h"
#include "util/net.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ektelo::serve {
namespace {

namespace fs = std::filesystem;

// sockaddr_un paths cap near 107 bytes: keep sockets directly in /tmp.
std::string FreshSock(const std::string& name) {
  const std::string path = "/tmp/ek_serve_" + name + ".sock";
  fs::remove(path);
  return path;
}

std::string FreshLedgerDir(const std::string& name) {
  const std::string dir =
      (fs::temp_directory_path() / ("ektelo_serve_test_" + name)).string();
  fs::remove_all(dir);
  return dir;
}

TenantSpec MakeTenant(const std::string& name, uint64_t seed,
                      double eps_total, std::size_t n = 128) {
  Rng rng{seed};
  const Vec hist =
      MakeHistogram1D(Shape1D::kGaussianMix, n, /*scale=*/5000.0, &rng);
  return TenantSpec{name, TableFromHistogram(hist, "v"), seed, eps_total};
}

InvokeRequest IdentityRequest(const std::string& tenant, double eps,
                              uint64_t request_id = 0) {
  InvokeRequest req;
  req.request_id = request_id;
  req.tenant = tenant;
  req.plan = "Identity";
  req.eps = eps;
  return req;
}

ServerOptions BaseOptions(const std::string& tag) {
  ServerOptions opts;
  opts.socket_path = FreshSock(tag);
  opts.ledger_dir = FreshLedgerDir(tag);
  return opts;
}

void Cleanup(const ServerOptions& opts) {
  fs::remove(opts.socket_path);
  fs::remove_all(opts.ledger_dir);
}

TEST(Server, ServesTwoTenantsConcurrently) {
  ServerOptions opts = BaseOptions("two");
  auto server = Server::Start(
      opts, {MakeTenant("alpha", 41, 1.0), MakeTenant("beta", 43, 1.0)});
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  std::vector<std::thread> threads;
  std::vector<int> ok_counts(2, 0);
  for (int t = 0; t < 2; ++t)
    threads.emplace_back([&, t] {
      const std::string tenant = t == 0 ? "alpha" : "beta";
      auto client = Client::Connect(opts.socket_path);
      ASSERT_TRUE(client.ok());
      for (int i = 0; i < 4; ++i) {
        auto reply =
            client->Invoke(IdentityRequest(tenant, 0.05 + 0.01 * i));
        ASSERT_TRUE(reply.ok());
        if (reply->code == ReplyCode::kOk) ++ok_counts[std::size_t(t)];
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok_counts[0], 4);
  EXPECT_EQ(ok_counts[1], 4);

  const auto alpha = (*server)->ledger().Balance("alpha");
  ASSERT_TRUE(alpha.has_value());
  EXPECT_DOUBLE_EQ(alpha->spent, 0.05 + 0.06 + 0.07 + 0.08);
  (*server)->Stop();
  Cleanup(opts);
}

TEST(Server, RestartPreservesSpentBudgetExactly) {
  ServerOptions opts = BaseOptions("restart");
  double spent_before = 0.0;
  {
    auto server = Server::Start(opts, {MakeTenant("alpha", 41, 1.0)});
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    auto client = Client::Connect(opts.socket_path);
    ASSERT_TRUE(client.ok());
    for (double eps : {0.1, 0.2, 0.15}) {
      auto reply = client->Invoke(IdentityRequest("alpha", eps));
      ASSERT_TRUE(reply.ok());
      ASSERT_EQ(reply->code, ReplyCode::kOk);
    }
    spent_before = (*server)->ledger().Balance("alpha")->spent;
    (*server)->Stop();
  }
  // Same ledger dir, same declared eps_total: the durable balance wins
  // over the TenantSpec registration — restarting refreshes nothing.
  auto server = Server::Start(opts, {MakeTenant("alpha", 41, 1.0)});
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const auto after = (*server)->ledger().Balance("alpha");
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->spent, spent_before);  // bitwise, not approximately
  (*server)->Stop();
  Cleanup(opts);
}

TEST(Server, ExhaustedTenantRefusedWithoutExecution) {
  ServerOptions opts = BaseOptions("exhaust");
  auto server = Server::Start(opts, {MakeTenant("alpha", 41, 0.1)});
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = Client::Connect(opts.socket_path);
  ASSERT_TRUE(client.ok());

  auto ok = client->Invoke(IdentityRequest("alpha", 0.1));
  ASSERT_TRUE(ok.ok());
  ASSERT_EQ(ok->code, ReplyCode::kOk);
  const auto execs_before = (*server)->Stats().executions;

  // Over-budget request: refused at admission, no kernel ever runs and
  // the durable ledger never sees a charge attempt's side effects.
  auto refused = client->Invoke(IdentityRequest("alpha", 0.05));
  ASSERT_TRUE(refused.ok());
  EXPECT_EQ(refused->code, ReplyCode::kBudgetExhausted);
  EXPECT_EQ(refused->eps_charged, 0.0);
  EXPECT_EQ(refused->estimate.size(), 0u);
  EXPECT_EQ((*server)->Stats().executions, execs_before);
  EXPECT_DOUBLE_EQ((*server)->ledger().Balance("alpha")->spent, 0.1);
  (*server)->Stop();
  Cleanup(opts);
}

TEST(Server, CoalescesIdenticalConcurrentRequests) {
  ServerOptions opts = BaseOptions("coalesce");
  opts.workers = 4;
  // Long enough for the storm to pile onto the in-flight leader.
  opts.test_execution_delay_ms = 100;
  auto server = Server::Start(opts, {MakeTenant("alpha", 41, 1.0)});
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::vector<InvokeReply> replies(kClients);
  for (int i = 0; i < kClients; ++i)
    threads.emplace_back([&, i] {
      auto client = Client::Connect(opts.socket_path);
      ASSERT_TRUE(client.ok());
      // Distinct request ids, identical structure: one content hash.
      auto reply =
          client->Invoke(IdentityRequest("alpha", 0.25, uint64_t(i)));
      ASSERT_TRUE(reply.ok());
      replies[std::size_t(i)] = std::move(*reply);
    });
  for (auto& th : threads) th.join();

  // One execution, one durable charge, identical bytes for everyone.
  for (const auto& r : replies) {
    ASSERT_EQ(r.code, ReplyCode::kOk);
    ASSERT_EQ(r.estimate.size(), replies[0].estimate.size());
    EXPECT_EQ(std::memcmp(r.estimate.data(), replies[0].estimate.data(),
                          r.estimate.size() * sizeof(double)),
              0);
  }
  EXPECT_EQ((*server)->Stats().executions, 1u);
  EXPECT_EQ((*server)->Stats().coalesced, std::uint64_t(kClients - 1));
  EXPECT_DOUBLE_EQ((*server)->ledger().Balance("alpha")->spent, 0.25);
  (*server)->Stop();
  Cleanup(opts);
}

// The other half of the hot-dashboard story: even when every request
// executes (response cache off, no concurrency to coalesce), identical
// structure means the OperatorCache serves the measurement operators —
// re-executions skip materialization and the answers stay identical.
TEST(Server, RepeatedExecutionsHitTheOperatorCache) {
  ServerOptions opts = BaseOptions("opcache");
  opts.coalesce = false;
  opts.response_cache_entries = 0;
  auto server = Server::Start(opts, {MakeTenant("alpha", 41, 2.0, 512)});
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = Client::Connect(opts.socket_path);
  ASSERT_TRUE(client.ok());

  InvokeRequest req = IdentityRequest("alpha", 0.1);
  req.plan = "H2";  // hierarchical select: real cacheable operator work
  auto first = client->Invoke(req);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->code, ReplyCode::kOk);
  const auto hits_after_first = (*server)->Stats().cache_hits;

  for (int i = 0; i < 3; ++i) {
    auto reply = client->Invoke(req);
    ASSERT_TRUE(reply.ok());
    ASSERT_EQ(reply->code, ReplyCode::kOk);
    ASSERT_EQ(reply->estimate.size(), first->estimate.size());
    EXPECT_EQ(std::memcmp(reply->estimate.data(), first->estimate.data(),
                          reply->estimate.size() * sizeof(double)),
              0);
  }
  EXPECT_EQ((*server)->Stats().executions, 4u);
  EXPECT_GT((*server)->Stats().cache_hits, hits_after_first);
  (*server)->Stop();
  Cleanup(opts);
}

// The serving determinism contract: the same request stream produces
// bitwise-identical responses per tenant whether the kernel runs
// serially (EKTELO_THREADS=0) or on 4 pool threads, with coalescing on
// or off.  Fresh ledger each run so admission decisions match too.
TEST(Server, ResponsesBitwiseIdenticalAcrossThreadCounts) {
  std::vector<InvokeRequest> stream;
  for (int i = 0; i < 3; ++i) {
    stream.push_back(IdentityRequest("alpha", 0.05 + 0.01 * i));
    stream.push_back(IdentityRequest("beta", 0.07 + 0.01 * i));
  }
  stream.push_back(IdentityRequest("alpha", 0.05));  // coalescable repeat

  auto run = [&stream](std::size_t threads, bool coalesce,
                       const std::string& tag) {
    ThreadPool::Global().Resize(threads);
    ServerOptions opts = BaseOptions(tag);
    opts.coalesce = coalesce;
    auto server = Server::Start(
        opts, {MakeTenant("alpha", 41, 1.0), MakeTenant("beta", 43, 1.0)});
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    auto client = Client::Connect(opts.socket_path);
    EXPECT_TRUE(client.ok());
    std::vector<Vec> estimates;
    for (const auto& req : stream) {
      auto reply = client->Invoke(req);
      EXPECT_TRUE(reply.ok());
      EXPECT_EQ(reply->code, ReplyCode::kOk);
      estimates.push_back(reply->estimate);
    }
    (*server)->Stop();
    Cleanup(opts);
    return estimates;
  };

  const auto serial = run(0, true, "det0");
  const auto pooled = run(4, true, "det4");
  const auto uncoalesced = run(4, false, "det4nc");
  ThreadPool::Global().Resize(ThreadPool::DefaultThreadCount());

  ASSERT_EQ(serial.size(), pooled.size());
  ASSERT_EQ(serial.size(), uncoalesced.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].size(), pooled[i].size());
    EXPECT_EQ(std::memcmp(serial[i].data(), pooled[i].data(),
                          serial[i].size() * sizeof(double)),
              0)
        << "reply " << i << " differs between EKTELO_THREADS=0 and =4";
    ASSERT_EQ(serial[i].size(), uncoalesced[i].size());
    EXPECT_EQ(std::memcmp(serial[i].data(), uncoalesced[i].data(),
                          serial[i].size() * sizeof(double)),
              0)
        << "reply " << i << " differs with coalescing off";
  }
}

TEST(Server, MalformedFramesRejectedWithoutTakingServerDown) {
  ServerOptions opts = BaseOptions("garbage");
  auto server = Server::Start(opts, {MakeTenant("alpha", 41, 1.0)});
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  // Raw garbage: the connection is dropped, the server lives on.
  {
    auto fd = net::ConnectUnix(opts.socket_path);
    ASSERT_TRUE(fd.ok());
    const uint8_t junk[] = "definitely not a frame";
    ASSERT_TRUE(net::SendAll(*fd, junk, sizeof(junk)).ok());
    uint8_t buf;
    EXPECT_FALSE(net::RecvAll(*fd, &buf, 1).ok());  // closed, no reply
    net::CloseFd(*fd);
  }
  // An intact frame whose invoke payload is garbage gets kBadRequest
  // on the same (still healthy) connection.
  {
    auto fd = net::ConnectUnix(opts.socket_path);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(
        WriteFrame(*fd, MsgType::kInvoke, {0xDE, 0xAD, 0xBE, 0xEF}).ok());
    MsgType type;
    std::vector<uint8_t> payload;
    ASSERT_TRUE(ReadFrame(*fd, &type, &payload).ok());
    EXPECT_EQ(type, MsgType::kInvokeReply);
    InvokeReply reply;
    ASSERT_TRUE(DecodeInvokeReply(payload, &reply));
    EXPECT_EQ(reply.code, ReplyCode::kBadRequest);
    net::CloseFd(*fd);
  }
  // Bad requests (unknown tenant / plan / absurd eps) refuse cleanly.
  auto client = Client::Connect(opts.socket_path);
  ASSERT_TRUE(client.ok());
  auto reply = client->Invoke(IdentityRequest("ghost", 0.1));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->code, ReplyCode::kBadRequest);
  reply = client->Invoke(IdentityRequest("alpha", -1.0));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->code, ReplyCode::kBadRequest);
  // And the server still serves real work afterwards.
  reply = client->Invoke(IdentityRequest("alpha", 0.1));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->code, ReplyCode::kOk);
  (*server)->Stop();
  Cleanup(opts);
}

TEST(Server, BoundedQueueRefusesOverloadWithQueueFull) {
  ServerOptions opts = BaseOptions("qfull");
  opts.workers = 1;
  opts.queue_capacity = 1;
  opts.coalesce = false;  // distinct handling not needed; force queueing
  opts.test_execution_delay_ms = 300;
  auto server = Server::Start(opts, {MakeTenant("alpha", 41, 8.0)});
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  constexpr int kClients = 6;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0}, queue_full{0};
  for (int i = 0; i < kClients; ++i)
    threads.emplace_back([&, i] {
      auto client = Client::Connect(opts.socket_path);
      ASSERT_TRUE(client.ok());
      // Distinct eps so no two requests share a content hash.
      auto reply =
          client->Invoke(IdentityRequest("alpha", 0.1 + 0.01 * i));
      ASSERT_TRUE(reply.ok());
      if (reply->code == ReplyCode::kOk) ++ok;
      if (reply->code == ReplyCode::kQueueFull) ++queue_full;
    });
  for (auto& th : threads) th.join();

  // One in flight + one queued; the rest of the burst must bounce.
  EXPECT_GT(queue_full.load(), 0);
  EXPECT_GT(ok.load(), 0);
  EXPECT_EQ(ok.load() + queue_full.load(), kClients);
  // A refused request costs nothing.
  const auto stats = (*server)->Stats();
  EXPECT_EQ(stats.refused_queue, std::uint64_t(queue_full.load()));
  (*server)->Stop();
  Cleanup(opts);
}

#if EKTELO_FAILPOINTS_ENABLED
TEST(Server, LedgerIoErrorFailsRequestClosedWithDurabilityError) {
  failpoint::Registry::Global().Reset();
  ServerOptions opts = BaseOptions("durability");
  auto server = Server::Start(opts, {MakeTenant("alpha", 41, 1.0)});
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = Client::Connect(opts.socket_path);
  ASSERT_TRUE(client.ok());

  // The ledger volume goes bad: the charge append fails, so the server
  // must refuse (nothing released) rather than hand out an uncharged
  // answer.  The advisory CanCharge pre-check does no I/O, so the
  // request reaches the authoritative worker-side Charge.
  ASSERT_TRUE(
      failpoint::Registry::Global().Arm("ledger.append", "error.eio"));
  auto reply = client->Invoke(IdentityRequest("alpha", 0.1));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->code, ReplyCode::kDurabilityError);
  EXPECT_TRUE(reply->estimate.empty());
  EXPECT_DOUBLE_EQ(reply->eps_charged, 0.0);

  // The failure is per-request, not a poisoned server: heal the disk
  // and the same request succeeds, with the refusal counted.
  failpoint::Registry::Global().Reset();
  reply = client->Invoke(IdentityRequest("alpha", 0.1));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->code, ReplyCode::kOk);
  const StatsReply stats = (*server)->Stats();
  EXPECT_EQ(stats.refused_durability, 1u);
  EXPECT_DOUBLE_EQ((*server)->ledger().Balance("alpha")->spent, 0.1);
  (*server)->Stop();
  Cleanup(opts);
}
#endif  // EKTELO_FAILPOINTS_ENABLED

TEST(Server, StaleQueuedRequestsRefusedAtTheDeadlineBeforeCharging) {
  ServerOptions opts = BaseOptions("deadline");
  opts.workers = 1;
  opts.queue_capacity = 4;
  opts.coalesce = false;
  opts.test_execution_delay_ms = 200;  // first request holds the worker
  opts.request_deadline_ms = 50;       // queued ones go stale behind it
  auto server = Server::Start(opts, {MakeTenant("alpha", 41, 8.0)});
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  constexpr int kClients = 3;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0}, deadline{0};
  for (int i = 0; i < kClients; ++i)
    threads.emplace_back([&, i] {
      auto client = Client::Connect(opts.socket_path);
      ASSERT_TRUE(client.ok());
      auto reply = client->Invoke(IdentityRequest("alpha", 0.1 + 0.01 * i));
      ASSERT_TRUE(reply.ok());
      if (reply->code == ReplyCode::kOk) ++ok;
      if (reply->code == ReplyCode::kDeadlineExceeded) ++deadline;
    });
  for (auto& th : threads) th.join();

  // Whoever grabbed the worker first finishes; everyone stuck in queue
  // for 200ms blew the 50ms deadline and was refused pre-charge.
  EXPECT_GT(ok.load(), 0);
  EXPECT_GT(deadline.load(), 0);
  EXPECT_EQ(ok.load() + deadline.load(), kClients);
  const StatsReply stats = (*server)->Stats();
  EXPECT_EQ(stats.refused_deadline, std::uint64_t(deadline.load()));
  // A deadline refusal charges nothing.
  const double spent = (*server)->ledger().Balance("alpha")->spent;
  EXPECT_LT(spent, 0.1 + 0.01 * kClients);
  (*server)->Stop();
  Cleanup(opts);
}

TEST(Client, ReadTimeoutSurfacesDeadlineExceededAfterRetries) {
  // A listener that accepts but never replies: every attempt must end
  // in kDeadlineExceeded, and the retry loop must give up cleanly.
  const std::string path = FreshSock("timeout");
  auto listener = net::UnixListener::Bind(path);
  ASSERT_TRUE(listener.ok());

  ClientOptions copts;
  copts.connect_timeout_ms = 1000;
  copts.read_timeout_ms = 50;
  copts.max_retries = 2;
  copts.backoff_base_ms = 1;
  copts.backoff_cap_ms = 4;
  auto client = Client::Connect(path, copts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  InvokeRequest req = IdentityRequest("alpha", 0.1);
  ASSERT_TRUE(req.coalesce);  // retryable-by-coalescing
  auto reply = client->Invoke(req);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded);

  // Stats is read-only and retries too, with the same terminal status.
  auto stats = client->Stats();
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kDeadlineExceeded);
  fs::remove(path);
}

TEST(Server, TraceCapturesFullRequestLifecycle) {
  obs::SetTraceEnabled(true);
  ServerOptions opts = BaseOptions("trace");
  auto server = Server::Start(opts, {MakeTenant("alpha", 41, 2.0)});
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = Client::Connect(opts.socket_path);
  ASSERT_TRUE(client.ok());

  InvokeRequest req = IdentityRequest("alpha", 0.25, /*request_id=*/99);
  req.plan = "H2";  // hierarchy + inference: exercises every subsystem
  auto reply = client->Invoke(req);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->code, ReplyCode::kOk);

  // The daemon's trace endpoint returns Chrome trace_event JSON.
  auto json = client->Trace();
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_EQ(json->rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json->find("\"serve.execute\""), std::string::npos);

  // The published trace spans the whole lifecycle: queue wait, charge,
  // execution, plus plan / rewrite / cache / solver work underneath.
  const auto traces = obs::TraceStore::Global().Latest(1);
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0]->request_id, "99");
  std::set<std::string> span_types;
  for (const obs::TraceEvent& ev : traces[0]->Events())
    span_types.insert(ev.name);
  EXPECT_TRUE(span_types.count("serve.queue_wait")) << json->substr(0, 400);
  EXPECT_TRUE(span_types.count("serve.charge"));
  EXPECT_TRUE(span_types.count("serve.execute"));
  EXPECT_GE(span_types.size(), 6u);

  (*server)->Stop();
  obs::SetTraceEnabled(false);
  Cleanup(opts);
}

TEST(Server, RepliesBitwiseIdenticalWithTracingOnOrOff) {
  InvokeRequest req = IdentityRequest("alpha", 0.25, /*request_id=*/1);
  req.plan = "H2";
  Vec off_estimate;
  {
    obs::SetTraceEnabled(false);
    ServerOptions opts = BaseOptions("bitoff");
    auto server = Server::Start(opts, {MakeTenant("alpha", 41, 2.0)});
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    auto client = Client::Connect(opts.socket_path);
    ASSERT_TRUE(client.ok());
    auto reply = client->Invoke(req);
    ASSERT_TRUE(reply.ok());
    ASSERT_EQ(reply->code, ReplyCode::kOk);
    off_estimate = reply->estimate;
    (*server)->Stop();
    Cleanup(opts);
  }
  {
    obs::SetTraceEnabled(true);
    ServerOptions opts = BaseOptions("biton");
    auto server = Server::Start(opts, {MakeTenant("alpha", 41, 2.0)});
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    auto client = Client::Connect(opts.socket_path);
    ASSERT_TRUE(client.ok());
    auto reply = client->Invoke(req);
    obs::SetTraceEnabled(false);
    ASSERT_TRUE(reply.ok());
    ASSERT_EQ(reply->code, ReplyCode::kOk);
    ASSERT_EQ(reply->estimate.size(), off_estimate.size());
    EXPECT_EQ(std::memcmp(reply->estimate.data(), off_estimate.data(),
                          off_estimate.size() * sizeof(double)),
              0);
    (*server)->Stop();
    Cleanup(opts);
  }
}

TEST(Server, PrometheusStatsEndpointExposesServeCounters) {
  ServerOptions opts = BaseOptions("prom");
  auto server = Server::Start(opts, {MakeTenant("alpha", 41, 1.0)});
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = Client::Connect(opts.socket_path);
  ASSERT_TRUE(client.ok());
  auto reply = client->Invoke(IdentityRequest("alpha", 0.1));
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->code, ReplyCode::kOk);

  auto text = client->StatsProm();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("# TYPE ektelo_serve_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text->find("ektelo_serve_requests_total{event=\"executed\"}"),
            std::string::npos);
  // Scrape-time gauges carry the tenant's durable balances.
  EXPECT_NE(
      text->find(
          "ektelo_tenant_budget_eps{tenant=\"alpha\",kind=\"total\"} 1"),
      std::string::npos);
  (*server)->Stop();
  Cleanup(opts);
}

TEST(Client, ConnectTimeoutToBacklogOnlySocketIsBounded) {
  // Nobody is listening at all: connect must fail fast with a status,
  // not hang (ECONNREFUSED on a fresh path; the timeout bounds the rest).
  ClientOptions copts;
  copts.connect_timeout_ms = 100;
  copts.max_retries = 0;
  const auto t0 = std::chrono::steady_clock::now();
  auto client = Client::Connect("/tmp/ek_serve_nobody_home.sock", copts);
  EXPECT_FALSE(client.ok());
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

}  // namespace
}  // namespace ektelo::serve
