// Tests for the newer operator paths: heteroscedastic / volume-normalized
// DAWA partition selection, the bias correction itself, PrivBayes
// synthetic sampling, the Workload plan baseline, and the flattened
// ("basic sparse") striped Kronecker ablation.
#include <cmath>

#include "data/generators.h"
#include "gtest/gtest.h"
#include "matrix/implicit_ops.h"
#include "ops/partition_select.h"
#include "ops/privbayes.h"
#include "plans/plans.h"
#include "plans/striped_plans.h"
#include "workload/workloads.h"

namespace ektelo {
namespace {

TEST(DawaCorrectionTest, UncorrectedDpFragmentsUniformNoise) {
  // Pure-noise "uniform" data: without bias correction the DP sees fake
  // deviation and refuses to merge; with correction it merges heavily.
  Rng rng(1);
  const std::size_t n = 256;
  Vec noisy(n);
  for (auto& v : noisy) v = 10.0 + rng.Laplace(5.0);
  Partition uncorrected = DawaIntervalPartition(noisy, 5.0, 0.0);
  Partition corrected = DawaIntervalPartition(noisy, 5.0, 5.0);
  EXPECT_LT(corrected.num_groups(), uncorrected.num_groups() / 2);
}

TEST(DawaCorrectionTest, CorrectionPreservesRealStructure) {
  // Two well-separated levels with mild noise: the corrected DP must
  // still cut at the boundary.
  Rng rng(2);
  const std::size_t n = 128;
  Vec noisy(n);
  for (std::size_t i = 0; i < n; ++i)
    noisy[i] = (i < n / 2 ? 10.0 : 500.0) + rng.Laplace(5.0);
  Partition p = DawaIntervalPartition(noisy, 5.0, 5.0);
  EXPECT_NE(p.group_of(0), p.group_of(n - 1));
  EXPECT_LE(p.num_groups(), 8u);
}

TEST(DawaHeteroscedasticTest, PerCellScalesMatchScalarWhenUniform) {
  Rng rng(3);
  Vec noisy(64);
  for (auto& v : noisy) v = rng.Uniform(0.0, 100.0);
  Partition a = DawaIntervalPartition(noisy, 2.0, 3.0);
  Partition b = DawaIntervalPartition(noisy, 2.0, Vec(64, 3.0));
  ASSERT_EQ(a.num_groups(), b.num_groups());
  for (std::size_t i = 0; i < 64; ++i)
    EXPECT_EQ(a.group_of(i), b.group_of(i));
}

TEST(DawaVolumeTest, NormalizationRecoversDensityStructure) {
  // Cells are pre-merged groups: volumes {1, 2, 4, ...} with constant
  // density 10.  Raw sums look wildly non-uniform; density-normalized
  // selection should merge everything into few groups.
  const std::size_t n = 32;
  Vec volumes(n), sums(n);
  Rng rng(4);
  for (std::size_t i = 0; i < n; ++i) {
    volumes[i] = double(1 + (i % 5));
    sums[i] = 10.0 * volumes[i];
  }
  Table t(Schema({{"v", n}}));
  for (std::size_t i = 0; i < n; ++i)
    for (int c = 0; c < int(sums[i]); ++c)
      t.AppendRow({uint32_t(i)});
  // Raw: fragments.
  ProtectedKernel k1(t, 100.0, 5);
  auto x1 = k1.TVectorize(k1.root());
  auto raw = DawaPartitionSelect(&k1, *x1, 50.0);
  ASSERT_TRUE(raw.ok());
  // Normalized: merges.
  ProtectedKernel k2(t, 100.0, 6);
  auto x2 = k2.TVectorize(k2.root());
  DawaOptions opts;
  opts.cell_volumes = volumes;
  auto norm = DawaPartitionSelect(&k2, *x2, 50.0, opts);
  ASSERT_TRUE(norm.ok());
  EXPECT_LT(norm->num_groups(), raw->num_groups());
  EXPECT_LE(norm->num_groups(), 4u);
}

TEST(PrivBayesSamplingTest, SampleHistogramHasRightMassAndSupport) {
  Rng rng(7);
  Table t(Schema({{"a", 3}, {"b", 3}}));
  for (int i = 0; i < 3000; ++i) {
    uint32_t a = uint32_t(rng.UniformInt(0, 2));
    t.AppendRow({a, a});  // b == a
  }
  ProtectedKernel kernel(t, 500.0, 8);
  auto res = PrivBayesSelectAndMeasure(&kernel, kernel.root(), t.schema(),
                                       500.0, &rng);
  ASSERT_TRUE(res.ok());
  Vec hist = PrivBayesSampleEstimate(t.schema(), *res, &rng);
  ASSERT_EQ(hist.size(), 9u);
  EXPECT_NEAR(Sum(hist), 3000.0, 30.0);
  for (double v : hist) EXPECT_GE(v, 0.0);
  // Diagonal structure (b == a) should dominate the sample.
  double diag = hist[0] + hist[4] + hist[8];
  EXPECT_GT(diag, 0.9 * Sum(hist));
}

TEST(PrivBayesSamplingTest, SampleVarianceExceedsProductEstimate) {
  // Against the exact table, the sampled release is (weakly) noisier
  // than the expected-product release — the Table 5 fidelity point.
  Rng rng(9);
  Table t = MakeCreditLike(&rng, 4000);
  double err_product = 0.0, err_sample = 0.0;
  Vec x_true = t.Vectorize();
  for (int trial = 0; trial < 3; ++trial) {
    ProtectedKernel kernel(t, 50.0, 10 + trial);
    auto res = PrivBayesSelectAndMeasure(&kernel, kernel.root(),
                                         t.schema(), 50.0, &rng);
    ASSERT_TRUE(res.ok());
    err_product += Rmse(PrivBayesProductEstimate(t.schema(), *res), x_true);
    err_sample +=
        Rmse(PrivBayesSampleEstimate(t.schema(), *res, &rng), x_true);
  }
  EXPECT_GE(err_sample, err_product);
}

TEST(WorkloadPlanTest, MeasuresWorkloadDirectly) {
  Rng rng(11);
  const std::size_t n = 64;
  Vec hist = MakeHistogram1D(Shape1D::kUniform, n, 5000.0, &rng);
  ProtectedKernel kernel(TableFromHistogram(hist, "v"), 1.0, 12);
  auto x = kernel.TVectorize(kernel.root());
  PlanContext ctx{.kernel = &kernel, .x = *x, .dims = {n}, .eps = 1.0,
                  .rng = &rng};
  auto w = MarginalWorkload(Schema({{"v", n}}), {"v"});
  auto xhat = RunWorkloadPlan(ctx, w, /*ls_inference=*/true);
  ASSERT_TRUE(xhat.ok());
  EXPECT_NEAR(kernel.BudgetConsumed(), 1.0, 1e-12);
  EXPECT_LT(Rmse(*xhat, hist), 4.0);
}

TEST(StripedKronTest, FlattenedAblationMatchesStructuredResult) {
  // Same seed: the flattened ("basic sparse") variant must produce the
  // same estimate as the structured Kronecker — only the representation
  // differs.
  Rng rng(13);
  const std::vector<std::size_t> dims = {16, 3, 2};
  Vec hist = MakeHistogram1D(Shape1D::kStep, 96, 10000.0, &rng);
  Vec results[2];
  for (int variant = 0; variant < 2; ++variant) {
    ProtectedKernel kernel(TableFromHistogram(hist, "v"), 0.5, 4242);
    auto x = kernel.TVectorize(kernel.root());
    PlanContext ctx{.kernel = &kernel, .x = *x, .dims = dims, .eps = 0.5,
                    .rng = &rng};
    auto xhat = RunHbStripedKronPlan(ctx, 0, /*materialize_full=*/variant);
    ASSERT_TRUE(xhat.ok());
    results[variant] = *xhat;
  }
  for (std::size_t i = 0; i < results[0].size(); ++i)
    EXPECT_NEAR(results[0][i], results[1][i], 1e-5);
}

TEST(MwemAugmentTest, AugmentedRoundsStayDisjoint) {
  // The variant-b measurement sets must keep sensitivity 1 (disjoint
  // ranges) at every round — checked through the kernel transcript.
  Rng rng(14);
  const std::size_t n = 256;
  Vec hist = MakeHistogram1D(Shape1D::kBimodal, n, 8000.0, &rng);
  ProtectedKernel kernel(TableFromHistogram(hist, "v"), 0.5, 15);
  auto x = kernel.TVectorize(kernel.root());
  PlanContext ctx{.kernel = &kernel, .x = *x, .dims = {n}, .eps = 0.5,
                  .rng = &rng};
  auto ranges = RandomRanges(50, n, 64, &rng);
  auto xhat = RunMwemPlan(ctx, ranges,
                          {.rounds = 6, .augment_h2 = true,
                           .known_total = Sum(hist)});
  ASSERT_TRUE(xhat.ok());
  for (const auto& e : kernel.transcript()) {
    if (e.op.rfind("VectorLaplace", 0) == 0) {
      // noise scale = sens/eps must equal 1/eps => sens == 1.
      EXPECT_NEAR(e.noise_scale * e.eps, 1.0, 1e-9);
    }
  }
}

}  // namespace
}  // namespace ektelo
