// Structural-equivalence tests for the striped plans' documented
// optimizations: solving per-stripe least squares equals the global
// stacked solve (no measurement crosses stripes), and the exact tree
// solver remains correct on non-binary branching factors.
#include <cmath>

#include "gtest/gtest.h"
#include "matrix/combinators.h"
#include "matrix/implicit_ops.h"
#include "matrix/lsmr.h"
#include "ops/hierarchy.h"
#include "ops/inference.h"
#include "ops/partition_select.h"
#include "ops/selection.h"
#include "util/rng.h"

namespace ektelo {
namespace {

TEST(StripedEquivalenceTest, PerStripeLsEqualsGlobalStackedLs) {
  // 3 stripes of 16 cells, HB measurements per stripe with iid noise: the
  // global stacked system must decompose into independent per-stripe
  // solves (the optimization RunHbStripedPlan relies on).
  Rng rng(1);
  const std::size_t ns = 16, stripes = 3, n = ns * stripes;
  Partition part = StripePartition({ns, stripes}, 0);
  auto groups = part.Groups();
  auto hb = HbSelect(ns);
  const std::size_t rows = hb->rows();

  // Noisy answers per stripe.
  Vec x_true(n);
  for (auto& v : x_true) v = std::floor(rng.Uniform(0.0, 30.0));
  std::vector<Vec> ys;
  for (std::size_t s = 0; s < stripes; ++s) {
    Vec local(ns);
    for (std::size_t k = 0; k < ns; ++k) local[k] = x_true[groups[s][k]];
    Vec y = hb->Apply(local);
    for (auto& v : y) v += rng.Laplace(2.0);
    ys.push_back(std::move(y));
  }

  // (a) per-stripe solves, scattered.
  Vec per_stripe(n, 0.0);
  for (std::size_t s = 0; s < stripes; ++s) {
    MeasurementSet mset;
    mset.Add(hb, ys[s], 2.0);
    Vec local = LeastSquaresInference(mset);
    for (std::size_t k = 0; k < ns; ++k)
      per_stripe[groups[s][k]] = local[k];
  }

  // (b) one global stacked system with scatter matrices.
  MeasurementSet global;
  for (std::size_t s = 0; s < stripes; ++s) {
    CsrMatrix local = hb->MaterializeSparse();
    std::vector<Triplet> t;
    for (std::size_t i = 0; i < rows; ++i)
      for (std::size_t k = local.indptr()[i]; k < local.indptr()[i + 1];
           ++k)
        t.push_back({i, groups[s][local.indices()[k]], local.values()[k]});
    global.Add(MakeSparse(CsrMatrix::FromTriplets(rows, n, std::move(t))),
               ys[s], 2.0);
  }
  Vec stacked = LeastSquaresInference(global);

  for (std::size_t c = 0; c < n; ++c)
    EXPECT_NEAR(per_stripe[c], stacked[c], 1e-5) << "cell " << c;
}

class TreeBranchingTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TreeBranchingTest, TreeLsMatchesLsmrForAnyBranching) {
  const std::size_t b = GetParam();
  Rng rng(10 + b);
  for (std::size_t n : {9u, 16u, 27u, 30u}) {
    Hierarchy h = BuildHierarchy(n, b);
    auto op = HierarchyOp(h);
    Vec x_true(n);
    for (auto& v : x_true) v = std::floor(rng.Uniform(0.0, 20.0));
    Vec y = op->Apply(x_true);
    for (auto& v : y) v += rng.Laplace(1.0);
    Vec tree = TreeBasedLeastSquares(h, y);
    Vec lsmr = Lsmr(*op, y).x;
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(tree[i], lsmr[i], 1e-5) << "b=" << b << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Branchings, TreeBranchingTest,
                         ::testing::Values(2, 3, 4, 5));

TEST(StripedEquivalenceTest, KronMeasurementEqualsPerStripeMeasurement) {
  // Kron(HB, I) answers on the full vector equal per-stripe HB answers
  // on the stripe sub-vectors (the HB-Striped_kron identity).
  Rng rng(2);
  const std::size_t ns = 8, rest = 4, n = ns * rest;
  Vec x(n);
  for (auto& v : x) v = rng.Uniform(0.0, 10.0);
  auto hb = HbSelect(ns);
  auto kron = MakeKronecker(hb, MakeIdentityOp(rest));
  Vec global = kron->Apply(x);
  Partition part = StripePartition({ns, rest}, 0);
  auto groups = part.Groups();
  for (std::size_t s = 0; s < rest; ++s) {
    Vec local(ns);
    for (std::size_t k = 0; k < ns; ++k) local[k] = x[groups[s][k]];
    Vec y = hb->Apply(local);
    for (std::size_t r = 0; r < y.size(); ++r)
      EXPECT_NEAR(global[r * rest + s], y[r], 1e-9);
  }
}

}  // namespace
}  // namespace ektelo
