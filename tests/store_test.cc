// Persistent artifact store: serialization round-trip fuzz (bit
// equality), truncated/corrupted-input rejection, DiskArtifactStore
// lifecycle (reopen, index recovery, eviction, compaction, hash-version
// invalidation, concurrency), the OperatorCache disk tier, and the
// cross-process stability contract of StructuralHash (golden values
// pinned under kHashVersion).
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "matrix/combinators.h"
#include "matrix/implicit_ops.h"
#include "matrix/linop.h"
#include "matrix/range_ops.h"
#include "matrix/rewrite.h"
#include "store/artifact_store.h"
#include "store/serialize.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace ektelo {
namespace {

namespace fs = std::filesystem;
using store::ArtifactKey;
using store::ByteReader;
using store::ByteWriter;
using store::DiskArtifactStore;
using store::DiskStoreOptions;

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (fs::temp_directory_path() / ("ektelo_store_test_" + name)).string();
  fs::remove_all(dir);
  return dir;
}

CsrMatrix RandomCsr(std::size_t m, std::size_t n, Rng* rng,
                    double density = 0.3) {
  std::vector<Triplet> t;
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (rng->Uniform() < density) t.push_back({i, j, rng->Normal()});
  return CsrMatrix::FromTriplets(m, n, std::move(t));
}

template <typename AllocA, typename AllocB>
bool BitEqual(const std::vector<double, AllocA>& a,
              const std::vector<double, AllocB>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

// ------------------------------------------------------------- serializers

TEST(SerializeTest, PrimitiveFramingIsLittleEndianAndBitExact) {
  ByteWriter w;
  w.U8(0xAB);
  w.U32(0x01020304u);
  w.U64(0x1122334455667788ull);
  w.F64(-0.0);
  // Explicit little-endian layout: least-significant byte first.
  const std::vector<uint8_t>& b = w.bytes();
  ASSERT_EQ(b.size(), 1u + 4u + 8u + 8u);
  EXPECT_EQ(b[0], 0xAB);
  EXPECT_EQ(b[1], 0x04);
  EXPECT_EQ(b[2], 0x03);
  EXPECT_EQ(b[3], 0x02);
  EXPECT_EQ(b[4], 0x01);
  EXPECT_EQ(b[5], 0x88);
  EXPECT_EQ(b[12], 0x11);

  ByteReader r(b);
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  double d;
  ASSERT_TRUE(r.U8(&u8));
  ASSERT_TRUE(r.U32(&u32));
  ASSERT_TRUE(r.U64(&u64));
  ASSERT_TRUE(r.F64(&d));
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0x01020304u);
  EXPECT_EQ(u64, 0x1122334455667788ull);
  EXPECT_TRUE(std::signbit(d));
  EXPECT_EQ(d, 0.0);
  EXPECT_EQ(r.remaining(), 0u);
  // Reads past the end fail and poison the reader.
  EXPECT_FALSE(r.U8(&u8));
  EXPECT_FALSE(r.ok());
}

TEST(SerializeTest, SpecialDoublesRoundTripBitwise) {
  const double specials[] = {0.0, -0.0, 1.0, -1.0,
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::quiet_NaN(),
                             std::numeric_limits<double>::denorm_min(),
                             std::numeric_limits<double>::max()};
  for (double v : specials) {
    ByteWriter w;
    store::SerializeScalar(v, &w);
    ByteReader r(w.bytes());
    double out;
    ASSERT_TRUE(store::DeserializeScalar(&r, &out));
    EXPECT_TRUE(BitwiseEq(v, out));
  }
}

TEST(SerializeTest, FuzzRoundTripIsBitExact) {
  Rng rng(2026);
  for (int it = 0; it < 120; ++it) {
    const std::size_t m = 1 + std::size_t(rng.UniformInt(0, 12));
    const std::size_t n = 1 + std::size_t(rng.UniformInt(0, 12));
    // Vec
    Vec v(std::size_t(rng.UniformInt(0, 40)));
    for (auto& x : v) x = rng.Normal() * std::pow(10.0, rng.UniformInt(-4, 4));
    ByteWriter wv;
    store::SerializeVec(v, &wv);
    ByteReader rv(wv.bytes());
    Vec v2;
    ASSERT_TRUE(store::DeserializeVec(&rv, &v2));
    EXPECT_TRUE(BitEqual(v, v2));
    EXPECT_EQ(rv.remaining(), 0u);
    // Dense
    DenseMatrix d(m, n);
    for (auto& x : d.data()) x = rng.Normal();
    ByteWriter wd;
    store::SerializeDense(d, &wd);
    ByteReader rd(wd.bytes());
    DenseMatrix d2;
    ASSERT_TRUE(store::DeserializeDense(&rd, &d2));
    ASSERT_EQ(d2.rows(), d.rows());
    ASSERT_EQ(d2.cols(), d.cols());
    EXPECT_TRUE(BitEqual(d.data(), d2.data()));
    // CSR: arrays must round-trip verbatim, not just the represented
    // matrix.
    CsrMatrix c = RandomCsr(m, n, &rng, rng.Uniform());
    ByteWriter wc;
    store::SerializeCsr(c, &wc);
    ByteReader rc(wc.bytes());
    CsrMatrix c2;
    ASSERT_TRUE(store::DeserializeCsr(&rc, &c2));
    ASSERT_EQ(c2.rows(), c.rows());
    ASSERT_EQ(c2.cols(), c.cols());
    EXPECT_EQ(c.indptr(), c2.indptr());
    EXPECT_EQ(c.indices(), c2.indices());
    EXPECT_TRUE(BitEqual(c.values(), c2.values()));
  }
}

TEST(SerializeTest, TruncatedPayloadsAreRejectedNotCrashed) {
  Rng rng(7);
  CsrMatrix c = RandomCsr(6, 9, &rng);
  ByteWriter w;
  store::SerializeCsr(c, &w);
  const std::vector<uint8_t> full = w.bytes();
  for (std::size_t len = 0; len < full.size(); ++len) {
    ByteReader r(full.data(), len);
    CsrMatrix out;
    EXPECT_FALSE(store::DeserializeCsr(&r, &out)) << "prefix " << len;
  }
  DenseMatrix d(4, 4, 1.5);
  ByteWriter wd;
  store::SerializeDense(d, &wd);
  for (std::size_t len = 0; len < wd.bytes().size(); len += 3) {
    ByteReader r(wd.bytes().data(), len);
    DenseMatrix out;
    EXPECT_FALSE(store::DeserializeDense(&r, &out));
  }
}

TEST(SerializeTest, StructurallyInvalidCsrIsRejected) {
  // Hand-build payloads violating each CSR invariant.
  const auto csr_payload = [](uint64_t rows, uint64_t cols, uint64_t nnz,
                              std::vector<uint64_t> indptr,
                              std::vector<uint64_t> indices,
                              std::vector<double> values) {
    ByteWriter w;
    w.U64(rows);
    w.U64(cols);
    w.U64(nnz);
    for (uint64_t v : indptr) w.U64(v);
    for (uint64_t v : indices) w.U64(v);
    for (double v : values) w.F64(v);
    return w.Take();
  };
  CsrMatrix out;
  {
    // Column index out of range.
    auto p = csr_payload(1, 2, 1, {0, 1}, {5}, {1.0});
    ByteReader r(p);
    EXPECT_FALSE(store::DeserializeCsr(&r, &out));
  }
  {
    // Non-monotone indptr.
    auto p = csr_payload(2, 2, 2, {0, 2, 1}, {0, 1}, {1.0, 2.0});
    ByteReader r(p);
    EXPECT_FALSE(store::DeserializeCsr(&r, &out));
  }
  {
    // indptr.back() != nnz.
    auto p = csr_payload(1, 2, 2, {0, 1}, {0, 1}, {1.0, 2.0});
    ByteReader r(p);
    EXPECT_FALSE(store::DeserializeCsr(&r, &out));
  }
  {
    // Absurd nnz (allocation bomb) with a tiny buffer.
    ByteWriter w;
    w.U64(1);
    w.U64(1);
    w.U64(uint64_t(1) << 60);
    ByteReader r(w.bytes());
    EXPECT_FALSE(store::DeserializeCsr(&r, &out));
  }
}

TEST(SerializeTest, ChecksumDetectsBitFlips) {
  std::vector<uint8_t> data(257);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = uint8_t(i * 31);
  const uint64_t sum = store::Checksum64(data);
  for (std::size_t i = 0; i < data.size(); i += 17) {
    data[i] ^= 0x40;
    EXPECT_NE(store::Checksum64(data), sum);
    data[i] ^= 0x40;
  }
  EXPECT_EQ(store::Checksum64(data), sum);
}

// -------------------------------------------------------- DiskArtifactStore

std::vector<uint8_t> Payload(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(DiskArtifactStoreTest, PutGetAndReopen) {
  const std::string dir = FreshDir("reopen");
  DiskStoreOptions opts;
  opts.hash_version = kHashVersion;
  {
    auto s = DiskArtifactStore::Open(dir, opts);
    ASSERT_TRUE(s);
    EXPECT_TRUE(s->Put({101, 0}, Payload("artifact-a")));
    EXPECT_TRUE(s->Put({102, 3}, Payload("artifact-b")));
    std::vector<uint8_t> got;
    EXPECT_TRUE(s->Get({101, 0}, &got));
    EXPECT_EQ(got, Payload("artifact-a"));
    EXPECT_FALSE(s->Get({101, 1}, &got));  // same hash, other kind
    EXPECT_FALSE(s->Get({999, 0}, &got));
  }  // destructor flushes the index
  {
    auto s = DiskArtifactStore::Open(dir, opts);
    ASSERT_TRUE(s);
    ASSERT_EQ(s->stats().entries, 2u);
    std::vector<uint8_t> got;
    EXPECT_TRUE(s->Get({102, 3}, &got));
    EXPECT_EQ(got, Payload("artifact-b"));
  }
  fs::remove_all(dir);
}

TEST(DiskArtifactStoreTest, RecoversAppendsWhenIndexCheckpointIsMissing) {
  const std::string dir = FreshDir("noindex");
  DiskStoreOptions opts;
  opts.hash_version = 1;
  {
    auto s = DiskArtifactStore::Open(dir, opts);
    ASSERT_TRUE(s);
    for (uint64_t h = 0; h < 8; ++h)
      ASSERT_TRUE(s->Put({h, 0}, Payload("p" + std::to_string(h))));
  }
  // Simulate write-behind: the log survived but the checkpoint did not.
  fs::remove(dir + "/artifacts.index");
  auto s = DiskArtifactStore::Open(dir, opts);
  ASSERT_TRUE(s);
  EXPECT_EQ(s->stats().entries, 8u);
  std::vector<uint8_t> got;
  EXPECT_TRUE(s->Get({5, 0}, &got));
  EXPECT_EQ(got, Payload("p5"));
  fs::remove_all(dir);
}

TEST(DiskArtifactStoreTest, CorruptedRecordIsRejectedWithoutCrashing) {
  const std::string dir = FreshDir("corrupt");
  DiskStoreOptions opts;
  opts.hash_version = 1;
  {
    auto s = DiskArtifactStore::Open(dir, opts);
    ASSERT_TRUE(s);
    ASSERT_TRUE(s->Put({1, 0}, Payload("first-record-payload")));
    ASSERT_TRUE(s->Put({2, 0}, Payload("second-record-payload")));
  }
  // Flip one byte inside the *second* record's payload (the file tail).
  {
    std::FILE* f = std::fopen((dir + "/artifacts.data").c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -3, SEEK_END);
    int c = std::fgetc(f);
    std::fseek(f, -3, SEEK_END);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  auto s = DiskArtifactStore::Open(dir, opts);
  ASSERT_TRUE(s);
  std::vector<uint8_t> got;
  EXPECT_TRUE(s->Get({1, 0}, &got));  // intact record still served
  EXPECT_FALSE(s->Get({2, 0}, &got));  // checksum mismatch -> dropped
  EXPECT_GE(s->stats().corrupt_drops, 1u);
  // The dropped key can be re-stored.
  EXPECT_TRUE(s->Put({2, 0}, Payload("replacement")));
  EXPECT_TRUE(s->Get({2, 0}, &got));
  EXPECT_EQ(got, Payload("replacement"));
  fs::remove_all(dir);
}

TEST(DiskArtifactStoreTest, TornTailIsDroppedOnOpen) {
  const std::string dir = FreshDir("torn");
  DiskStoreOptions opts;
  opts.hash_version = 1;
  {
    auto s = DiskArtifactStore::Open(dir, opts);
    ASSERT_TRUE(s);
    ASSERT_TRUE(s->Put({1, 0}, Payload("keep-me")));
    ASSERT_TRUE(s->Put({2, 0}, Payload("i-will-be-torn")));
  }
  fs::remove(dir + "/artifacts.index");  // force a full scan
  // Chop the last record mid-payload, as a crash mid-append would.
  const auto full = fs::file_size(dir + "/artifacts.data");
  fs::resize_file(dir + "/artifacts.data", full - 5);
  auto s = DiskArtifactStore::Open(dir, opts);
  ASSERT_TRUE(s);
  std::vector<uint8_t> got;
  EXPECT_TRUE(s->Get({1, 0}, &got));
  EXPECT_FALSE(s->Get({2, 0}, &got));
  // The log is whole again: appends after the truncation point parse.
  EXPECT_TRUE(s->Put({3, 0}, Payload("after-recovery")));
  EXPECT_TRUE(s->Get({3, 0}, &got));
  fs::remove_all(dir);
}

TEST(DiskArtifactStoreTest, HashVersionMismatchInvalidatesCleanly) {
  const std::string dir = FreshDir("hashver");
  DiskStoreOptions v1;
  v1.hash_version = 1;
  {
    auto s = DiskArtifactStore::Open(dir, v1);
    ASSERT_TRUE(s);
    ASSERT_TRUE(s->Put({42, 0}, Payload("old-hash-scheme")));
  }
  DiskStoreOptions v2 = v1;
  v2.hash_version = 2;
  {
    // A process with a newer hash function must not see v1 artifacts.
    auto s = DiskArtifactStore::Open(dir, v2);
    ASSERT_TRUE(s);
    EXPECT_EQ(s->stats().entries, 0u);
    std::vector<uint8_t> got;
    EXPECT_FALSE(s->Get({42, 0}, &got));
    ASSERT_TRUE(s->Put({42, 0}, Payload("new-hash-scheme")));
  }
  {
    // And the v1 reader still finds its own record (both coexist in the
    // log until compaction).
    auto s = DiskArtifactStore::Open(dir, v1);
    ASSERT_TRUE(s);
    std::vector<uint8_t> got;
    ASSERT_TRUE(s->Get({42, 0}, &got));
    EXPECT_EQ(got, Payload("old-hash-scheme"));
  }
  fs::remove_all(dir);
}

TEST(DiskArtifactStoreTest, ByteBudgetedLruEviction) {
  const std::string dir = FreshDir("lru");
  DiskStoreOptions opts;
  opts.hash_version = 1;
  opts.max_bytes = 1024;
  auto s = DiskArtifactStore::Open(dir, opts);
  ASSERT_TRUE(s);
  const std::vector<uint8_t> blob(200, 0x5A);
  for (uint64_t h = 0; h < 8; ++h) ASSERT_TRUE(s->Put({h, 0}, blob));
  const auto st = s->stats();
  EXPECT_LE(st.live_bytes, 1024u);
  EXPECT_GT(st.evictions, 0u);
  // Most recently inserted survives; the oldest was evicted.
  std::vector<uint8_t> got;
  EXPECT_TRUE(s->Get({7, 0}, &got));
  EXPECT_FALSE(s->Get({0, 0}, &got));
  // Touching an entry protects it from the next eviction round.
  ASSERT_TRUE(s->Get({4, 0}, &got));
  for (uint64_t h = 100; h < 103; ++h) ASSERT_TRUE(s->Put({h, 0}, blob));
  EXPECT_TRUE(s->Get({4, 0}, &got));
  // A record larger than the whole budget is refused outright.
  EXPECT_FALSE(s->Put({999, 0}, std::vector<uint8_t>(4096, 1)));
  fs::remove_all(dir);
}

TEST(DiskArtifactStoreTest, AdmissionDoorkeeperProtectsHotEntries) {
  const std::string dir = FreshDir("admission");
  DiskStoreOptions opts;
  opts.hash_version = 1;
  opts.max_bytes = 1100;  // three ~356-byte records fit; a fourth evicts
  opts.admission = 1;     // doorkeeper on, regardless of the env
  auto s = DiskArtifactStore::Open(dir, opts);
  ASSERT_TRUE(s);
  const std::vector<uint8_t> blob(300, 0x7E);
  for (uint64_t h = 1; h <= 3; ++h) ASSERT_TRUE(s->Put({h, 0}, blob));
  // Heat up every resident: each Get feeds the frequency sketch.
  std::vector<uint8_t> got;
  for (int i = 0; i < 10; ++i)
    for (uint64_t h = 1; h <= 3; ++h) ASSERT_TRUE(s->Get({h, 0}, &got));
  // A cold newcomer would have to evict a hot entry: refused, nothing
  // evicted, every resident still served.
  EXPECT_FALSE(s->Put({50, 0}, blob));
  EXPECT_GE(s->stats().admission_rejects, 1u);
  EXPECT_FALSE(s->Get({50, 0}, &got));
  for (uint64_t h = 1; h <= 3; ++h)
    EXPECT_TRUE(s->Get({h, 0}, &got)) << "hot hash " << h;
  // A newcomer hotter than the LRU victim (its misses fed the sketch
  // harder than the victim's touches) is admitted and displaces it.
  for (int i = 0; i < 40; ++i) EXPECT_FALSE(s->Get({60, 0}, &got));
  EXPECT_TRUE(s->Put({60, 0}, blob));
  EXPECT_TRUE(s->Get({60, 0}, &got));
  EXPECT_EQ(got, blob);
  fs::remove_all(dir);
}

TEST(DiskArtifactStoreTest, AdmissionOffAdmitsFreely) {
  const std::string dir = FreshDir("admission_off");
  DiskStoreOptions opts;
  opts.hash_version = 1;
  opts.max_bytes = 1100;
  opts.admission = 0;  // default behavior: plain byte-budgeted LRU
  auto s = DiskArtifactStore::Open(dir, opts);
  ASSERT_TRUE(s);
  const std::vector<uint8_t> blob(300, 0x11);
  for (uint64_t h = 1; h <= 3; ++h) ASSERT_TRUE(s->Put({h, 0}, blob));
  std::vector<uint8_t> got;
  for (int i = 0; i < 10; ++i)
    for (uint64_t h = 1; h <= 3; ++h) ASSERT_TRUE(s->Get({h, 0}, &got));
  // Without the doorkeeper the same cold newcomer evicts the LRU entry.
  EXPECT_TRUE(s->Put({50, 0}, blob));
  EXPECT_TRUE(s->Get({50, 0}, &got));
  EXPECT_EQ(s->stats().admission_rejects, 0u);
  EXPECT_GT(s->stats().evictions, 0u);
  fs::remove_all(dir);
}

TEST(DiskArtifactStoreTest, KindQuotaEvictsWithinKindOnly) {
  const std::string dir = FreshDir("kindquota");
  DiskStoreOptions opts;
  opts.hash_version = 1;
  opts.max_bytes = 1 << 20;            // global budget never binds here
  opts.kind_quotas = {{1, 1024}};      // kind 1 capped; kind 0 unbounded
  auto s = DiskArtifactStore::Open(dir, opts);
  ASSERT_TRUE(s);
  const std::vector<uint8_t> blob(300, 0x3C);
  // Kind 0 entries inserted FIRST — globally the least recently used, so
  // an unscoped LRU pass would evict them before any kind-1 entry.
  for (uint64_t h = 0; h < 4; ++h) ASSERT_TRUE(s->Put({h, 0}, blob));
  // A flood of kind-1 entries blows through the kind-1 quota.
  for (uint64_t h = 100; h < 110; ++h) ASSERT_TRUE(s->Put({h, 1}, blob));
  const auto st = s->stats();
  EXPECT_GT(st.kind_evictions, 0u);
  std::vector<uint8_t> got;
  // Every kind-0 entry survived the flood untouched...
  for (uint64_t h = 0; h < 4; ++h)
    EXPECT_TRUE(s->Get({h, 0}, &got)) << "kind-0 hash " << h;
  // ...while kind 1 holds only its newest quota's worth: the freshest
  // entry is live, the oldest was evicted within its own kind.
  EXPECT_TRUE(s->Get({109, 1}, &got));
  EXPECT_FALSE(s->Get({100, 1}, &got));
  // A single record over its kind quota is refused outright (it could
  // never fit even after evicting every sibling).
  EXPECT_FALSE(s->Put({999, 1}, std::vector<uint8_t>(2048, 1)));
  EXPECT_TRUE(s->Put({999, 0}, std::vector<uint8_t>(2048, 1)));
  fs::remove_all(dir);
}

TEST(DiskArtifactStoreTest, KindQuotaEnforcedOnReopen) {
  const std::string dir = FreshDir("kindquota_reopen");
  DiskStoreOptions unbounded;
  unbounded.hash_version = 1;
  const std::vector<uint8_t> blob(300, 0x3D);
  {
    auto s = DiskArtifactStore::Open(dir, unbounded);
    ASSERT_TRUE(s);
    for (uint64_t h = 0; h < 8; ++h) ASSERT_TRUE(s->Put({h, 2}, blob));
  }
  DiskStoreOptions quota = unbounded;
  quota.kind_quotas = {{2, 1024}};
  auto s = DiskArtifactStore::Open(dir, quota);
  ASSERT_TRUE(s);
  // Opening with a tighter per-kind policy trims the recovered index
  // down to the quota immediately, not on the next Put.
  const auto st = s->stats();
  EXPECT_GT(st.kind_evictions, 0u);
  std::size_t live = 0;
  std::vector<uint8_t> got;
  for (uint64_t h = 0; h < 8; ++h)
    if (s->Get({h, 2}, &got)) ++live;
  EXPECT_LT(live, 8u);
  EXPECT_GT(live, 0u);
  fs::remove_all(dir);
}

TEST(DiskArtifactStoreTest, CompactionDropsDeadBytesAndKeepsLiveRecords) {
  const std::string dir = FreshDir("compact");
  DiskStoreOptions opts;
  opts.hash_version = 1;
  opts.max_bytes = 2048;
  auto s = DiskArtifactStore::Open(dir, opts);
  ASSERT_TRUE(s);
  const std::vector<uint8_t> blob(300, 0x77);
  for (uint64_t h = 0; h < 20; ++h) ASSERT_TRUE(s->Put({h, 0}, blob));
  const auto before = s->stats();
  EXPECT_GT(before.data_bytes, before.live_bytes);  // dead bytes exist
  s->Compact();
  const auto after = s->stats();
  EXPECT_GE(after.compactions, 1u);
  EXPECT_LE(after.data_bytes, before.data_bytes);
  EXPECT_EQ(after.entries, before.entries);
  std::vector<uint8_t> got;
  EXPECT_TRUE(s->Get({19, 0}, &got));
  EXPECT_EQ(got, blob);
  fs::remove_all(dir);
}

#if EKTELO_FAILPOINTS_ENABLED
TEST(DiskArtifactStoreTest, ReopensCleanlyAfterEnospcMidCompaction) {
  const std::string dir = FreshDir("enospc_compact");
  DiskStoreOptions opts;
  opts.hash_version = 1;
  opts.max_bytes = 2048;
  const std::vector<uint8_t> blob(300, 0x42);
  {
    auto s = DiskArtifactStore::Open(dir, opts);
    ASSERT_TRUE(s);
    // Same shape as the compaction test: enough churn that dead bytes
    // dominate and Compact has real work to do.
    for (uint64_t h = 0; h < 20; ++h) ASSERT_TRUE(s->Put({h, 0}, blob));

    // The device fills up while compaction rewrites live records into
    // the new-generation tmp file: the store must degrade (memory-only),
    // not corrupt the old log it was compacting away.
    failpoint::Registry::Global().Reset();
    ASSERT_TRUE(failpoint::Registry::Global().Arm("store.compact.write",
                                                  "error.enospc@2"));
    s->Compact();
    failpoint::Registry::Global().Reset();
    const auto st = s->stats();
    EXPECT_TRUE(st.degraded);
    EXPECT_GE(st.io_errors, 1u);
  }
  // Reopen: the original (pre-compaction) log is intact — the tmp file
  // was abandoned, the rename never happened — so every live record
  // survives bit-exact.
  auto s = DiskArtifactStore::Open(dir, opts);
  ASSERT_TRUE(s);
  EXPECT_FALSE(s->stats().degraded);
  std::vector<uint8_t> got;
  EXPECT_TRUE(s->Get({19, 0}, &got));
  EXPECT_EQ(got, blob);
  // And the reopened store is fully writable again.
  EXPECT_TRUE(s->Put({99, 0}, blob));
  fs::remove_all(dir);
}
#endif  // EKTELO_FAILPOINTS_ENABLED

TEST(DiskArtifactStoreTest, SecondOpenerIsReadOnlyAndLockOutlivesCleanly) {
  const std::string dir = FreshDir("lockfile");
  DiskStoreOptions opts;
  opts.hash_version = 1;
  auto writer = DiskArtifactStore::Open(dir, opts);
  ASSERT_TRUE(writer);
  EXPECT_FALSE(writer->stats().read_only);
  ASSERT_TRUE(writer->Put({7, 0}, Payload("from-the-writer")));

  // A second store on the same directory attaches read-only: it serves
  // what the writer has appended (the log is the source of truth) but
  // refuses to write.
  auto reader = DiskArtifactStore::Open(dir, opts);
  ASSERT_TRUE(reader);
  EXPECT_TRUE(reader->stats().read_only);
  std::vector<uint8_t> got;
  EXPECT_TRUE(reader->Get({7, 0}, &got));
  EXPECT_EQ(got, Payload("from-the-writer"));
  EXPECT_FALSE(reader->Put({8, 0}, Payload("refused")));
  reader.reset();  // a reader's close must NOT release the writer's lock
  EXPECT_TRUE(fs::exists(dir + "/artifacts.lock"));

  // Closing the writer releases the lock; the next opener writes again.
  writer.reset();
  EXPECT_FALSE(fs::exists(dir + "/artifacts.lock"));
  auto next = DiskArtifactStore::Open(dir, opts);
  ASSERT_TRUE(next);
  EXPECT_FALSE(next->stats().read_only);
  EXPECT_TRUE(next->Put({8, 0}, Payload("accepted")));
  fs::remove_all(dir);
}

#ifndef _WIN32
TEST(DiskArtifactStoreTest, StaleLockFromADeadWriterIsReclaimed) {
  const std::string dir = FreshDir("stalelock");
  DiskStoreOptions opts;
  opts.hash_version = 1;
  // Populate, then simulate a crashed writer: the lock file survives
  // with a pid that no longer exists (beyond pid_max, so kill -> ESRCH).
  { ASSERT_TRUE(DiskArtifactStore::Open(dir, opts)->Put({1, 0},
                                                        Payload("kept"))); }
  {
    std::FILE* lf = std::fopen((dir + "/artifacts.lock").c_str(), "wb");
    ASSERT_NE(lf, nullptr);
    std::fputs("999999999\n", lf);
    std::fclose(lf);
  }
  auto s = DiskArtifactStore::Open(dir, opts);
  ASSERT_TRUE(s);
  EXPECT_FALSE(s->stats().read_only);  // stale lock was reclaimed
  std::vector<uint8_t> got;
  EXPECT_TRUE(s->Get({1, 0}, &got));
  EXPECT_TRUE(s->Put({2, 0}, Payload("new")));
  fs::remove_all(dir);
}
#endif

TEST(DiskArtifactStoreTest, ConcurrentPutGetIsSafe) {
  const std::string dir = FreshDir("threads");
  DiskStoreOptions opts;
  opts.hash_version = 1;
  auto s = DiskArtifactStore::Open(dir, opts);
  ASSERT_TRUE(s);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < 50; ++i) {
        const uint64_t h = (i * 4 + uint64_t(t)) % 64;
        const std::vector<uint8_t> p(16, uint8_t(h));
        if (!s->Put({h, 0}, p)) ++failures;
        std::vector<uint8_t> got;
        if (s->Get({h, 0}, &got) && got != p) ++failures;
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  fs::remove_all(dir);
}

// ----------------------------------------------- structural-hash stability

TEST(HashStabilityTest, PersistabilityCoversBuiltinsOnly) {
  Rng rng(5);
  auto sparse = MakeSparse(RandomCsr(4, 6, &rng));
  EXPECT_TRUE(StructuralHashPersistable(*sparse));
  EXPECT_TRUE(StructuralHashPersistable(*MakeIdentityOp(8)));
  auto composite = MakeScaled(
      MakeVStack({MakeKronecker(MakePrefixOp(4), MakeIdentityOp(2)),
                  MakeRangeSetOp({{0, 3}, {2, 7}}, 8)}),
      2.5);
  EXPECT_TRUE(StructuralHashPersistable(*composite));
  EXPECT_TRUE(StructuralHashPersistable(*composite->Gram()));

  // Unknown subclasses hash per-instance: never persistable, and
  // neither is any composite containing one.
  class OpaqueOp final : public LinOp {
   public:
    OpaqueOp() : LinOp(3, 3) {}
    void ApplyRaw(const double* x, double* y) const override {
      for (int i = 0; i < 3; ++i) y[i] = x[i];
    }
    void ApplyTRaw(const double* x, double* y) const override {
      for (int i = 0; i < 3; ++i) y[i] = x[i];
    }
    std::string DebugName() const override { return "Opaque"; }
  };
  auto opaque = std::make_shared<OpaqueOp>();
  EXPECT_FALSE(StructuralHashPersistable(*opaque));
  EXPECT_FALSE(
      StructuralHashPersistable(*MakeVStack({MakeIdentityOp(3), opaque})));
  EXPECT_FALSE(StructuralHashPersistable(*MakeScaled(opaque, 2.0)));
}

TEST(HashStabilityTest, EqualConstructionHashesEqualAcrossInstances) {
  Rng rng(11);
  CsrMatrix c = RandomCsr(5, 16, &rng);
  auto build = [&c] {
    return MakeVStack(
        {MakeScaled(MakeSparse(c), 3.25),
         MakeKronecker(MakePrefixOp(4), MakeWaveletOp(4)),
         MakeRangeSetOp({{1, 2}, {0, 15}}, 16)});
  };
  auto a = build();
  auto b = build();
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(a->StructuralHash(), b->StructuralHash());
  EXPECT_TRUE(a->StructuralEq(*b));
}

// Golden structural hashes: these values are the cross-process contract
// the persistent store keys on.  If this test fails, the hash function
// changed — bump kHashVersion in matrix/linop.h (old stores then
// invalidate cleanly) and update the goldens to the new values.
TEST(HashStabilityTest, GoldenHashesPinTheCrossProcessContract) {
  EXPECT_EQ(kHashVersion, 2u);

  const uint64_t h_ident8 = MakeIdentityOp(8)->StructuralHash();
  const uint64_t h_prefix16 = MakePrefixOp(16)->StructuralHash();
  const uint64_t h_ranges =
      MakeRangeSetOp({{0, 3}, {2, 5}}, 8)->StructuralHash();
  const uint64_t h_sparse =
      MakeSparse(CsrMatrix::FromTriplets(
                     2, 3, {{0, 0, 1.0}, {0, 2, -2.5}, {1, 1, 0.125}}))
          ->StructuralHash();
  DenseMatrix d(2, 2);
  d.At(0, 0) = 1.0;
  d.At(0, 1) = 2.0;
  d.At(1, 0) = 3.0;
  d.At(1, 1) = 4.0;
  const uint64_t h_dense = MakeDense(d)->StructuralHash();
  const uint64_t h_comp =
      MakeScaled(MakeKronecker(MakePrefixOp(4), MakeIdentityOp(2)), 2.5)
          ->StructuralHash();
  const uint64_t h_gram = MakePrefixOp(8)->Gram()->StructuralHash();

  EXPECT_EQ(h_ident8, 0xf3aa3f7f8d828748ull);
  EXPECT_EQ(h_prefix16, 0x8aa7ff9991f02220ull);
  EXPECT_EQ(h_ranges, 0xc9937077cca8ac92ull);
  EXPECT_EQ(h_sparse, 0x53260851d80da848ull);
  EXPECT_EQ(h_dense, 0xda8037cce0875fd1ull);
  EXPECT_EQ(h_comp, 0xa78aed5d4be99264ull);
  EXPECT_EQ(h_gram, 0x9f3530ca9867276full);
}

// ------------------------------------------------ OperatorCache disk tier

/// Attaches a fresh disk tier on `dir`, returning a cleanup guard.
struct TierGuard {
  explicit TierGuard(const std::string& dir) {
    DiskStoreOptions opts;
    opts.hash_version = kHashVersion;
    OperatorCache::Global().Clear();
    OperatorCache::Global().SetDiskTier(DiskArtifactStore::Open(dir, opts));
  }
  ~TierGuard() {
    OperatorCache::Global().SetDiskTier(nullptr);
    OperatorCache::Global().Clear();
  }
};

TEST(CacheDiskTierTest, ArtifactsSurviveAMemoryClearViaDisk) {
  const std::string dir = FreshDir("tier_roundtrip");
  Rng rng(21);
  CsrMatrix c = RandomCsr(12, 10, &rng);
  {
    TierGuard guard(dir);
    auto& cache = OperatorCache::Global();
    // A composed operator whose materialization/Gram are worth caching.
    auto op = MakeProduct(MakeSparse(c), MakePrefixOp(10));
    auto mat_cold = cache.MaterializeSparse(op);
    auto gram_cold = cache.GramDense(op);
    const double sens_cold = op->SensitivityL1();
    // Spills are write-behind: barrier before counting / relying on them.
    cache.FlushDiskTier();
    const auto st0 = cache.stats();
    EXPECT_GT(st0.disk_writes, 0u);

    // Simulate a fresh process: the memory tier empties, the disk tier
    // persists (same open store).
    cache.Clear();
    auto op2 = MakeProduct(MakeSparse(c), MakePrefixOp(10));
    auto mat_warm = cache.MaterializeSparse(op2);
    auto gram_warm = cache.GramDense(op2);
    const double sens_warm = op2->SensitivityL1();
    const auto st1 = cache.stats();
    EXPECT_GT(st1.disk_hits, st0.disk_hits);

    // Promoted artifacts are bit-identical to computed ones.
    EXPECT_EQ(mat_cold->indptr(), mat_warm->indptr());
    EXPECT_EQ(mat_cold->indices(), mat_warm->indices());
    EXPECT_TRUE(BitEqual(mat_cold->values(), mat_warm->values()));
    EXPECT_TRUE(BitEqual(gram_cold->data(), gram_warm->data()));
    EXPECT_TRUE(BitwiseEq(sens_cold, sens_warm));
  }
  fs::remove_all(dir);
}

TEST(CacheDiskTierTest, WarmStartAcrossStoreReopen) {
  const std::string dir = FreshDir("tier_reopen");
  Rng rng(23);
  CsrMatrix c = RandomCsr(16, 12, &rng);
  AlignedVec gram_cold_data;
  {
    TierGuard guard(dir);
    auto op = MakeSparse(c);
    gram_cold_data = OperatorCache::Global().GramDense(op)->data();
  }  // tier detached -> store flushed and closed
  {
    TierGuard guard(dir);  // second "process": same dir, fresh store
    auto op = MakeSparse(c);
    const auto before = OperatorCache::Global().stats();
    AlignedVec warm = OperatorCache::Global().GramDense(op)->data();
    const auto after = OperatorCache::Global().stats();
    EXPECT_GT(after.disk_hits, before.disk_hits);
    EXPECT_TRUE(BitEqual(gram_cold_data, warm));
  }
  fs::remove_all(dir);
}

TEST(CacheDiskTierTest, UnknownOperatorsNeverTouchTheStore) {
  class OpaqueOp final : public LinOp {
   public:
    OpaqueOp() : LinOp(4, 4) {}
    void ApplyRaw(const double* x, double* y) const override {
      for (int i = 0; i < 4; ++i) y[i] = 2.0 * x[i];
    }
    void ApplyTRaw(const double* x, double* y) const override {
      ApplyRaw(x, y);
    }
    std::string DebugName() const override { return "Opaque"; }
  };
  const std::string dir = FreshDir("tier_unknown");
  {
    TierGuard guard(dir);
    auto& cache = OperatorCache::Global();
    const auto before = cache.stats();  // counters are process-cumulative
    auto op = std::make_shared<OpaqueOp>();
    (void)cache.MaterializeSparse(op);
    (void)op->SensitivityL1();
    const auto st = cache.stats();
    EXPECT_EQ(st.disk_writes, before.disk_writes);
    EXPECT_EQ(st.disk_hits, before.disk_hits);
    EXPECT_EQ(st.disk_misses, before.disk_misses);
    EXPECT_EQ(cache.disk_tier()->stats().puts, 0u);
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace ektelo
