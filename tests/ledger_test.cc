// Durable budget-ledger semantics: reopen preserves balances bit-for-
// bit, torn/corrupt log tails are dropped without under-counting any
// released answer, checkpoint corruption falls back to full replay,
// the writer lock excludes live processes and reclaims dead ones, and
// concurrent multi-tenant charging never over-spends (TSan target).
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "serve/ledger.h"
#include "store/serialize.h"

namespace ektelo::serve {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (fs::temp_directory_path() / ("ektelo_ledger_test_" + name)).string();
  fs::remove_all(dir);
  return dir;
}

void AppendBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

void FlipByte(const std::string& path, std::size_t offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, long(offset), SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, long(offset), SEEK_SET), 0);
  std::fputc(c ^ 0xFF, f);
  std::fclose(f);
}

TEST(BudgetLedger, ChargeRefundAndSlackSemantics) {
  const std::string dir = FreshDir("basic");
  auto ledger = BudgetLedger::Open(dir, {});
  ASSERT_NE(ledger, nullptr);

  EXPECT_TRUE(ledger->CreateTenant("a", 1.0));
  EXPECT_FALSE(ledger->CreateTenant("a", 5.0));  // never resets
  EXPECT_FALSE(ledger->CreateTenant("", 1.0));

  // Unknown tenant, non-positive, and non-finite epsilons all refuse.
  EXPECT_EQ(ledger->Charge("ghost", 0.1), ChargeResult::kRefused);
  EXPECT_EQ(ledger->Charge("a", 0.0), ChargeResult::kRefused);
  EXPECT_EQ(ledger->Charge("a", -0.5), ChargeResult::kRefused);

  EXPECT_EQ(ledger->Charge("a", 0.25), ChargeResult::kCharged);
  EXPECT_EQ(ledger->Charge("a", 0.25), ChargeResult::kCharged);
  // Exact exhaustion is admitted (BudgetScope slack), one ulp more is not.
  EXPECT_TRUE(ledger->CanCharge("a", 0.5));
  EXPECT_EQ(ledger->Charge("a", 0.5), ChargeResult::kCharged);
  EXPECT_FALSE(ledger->CanCharge("a", 1e-6));
  EXPECT_EQ(ledger->Charge("a", 1e-6), ChargeResult::kRefused);
  // The unknown-tenant charge above and the exhausted one both count.
  EXPECT_EQ(ledger->stats().refusals, 2u);

  // A refund (failed execution) restores headroom; spent clamps at 0.
  EXPECT_TRUE(ledger->Refund("a", 0.5));
  EXPECT_TRUE(ledger->CanCharge("a", 0.5));
  EXPECT_TRUE(ledger->Refund("a", 99.0));
  EXPECT_DOUBLE_EQ(ledger->Balance("a")->spent, 0.0);

  EXPECT_TRUE(ledger->SetTotal("a", 2.0));
  EXPECT_DOUBLE_EQ(ledger->Balance("a")->total, 2.0);
  fs::remove_all(dir);
}

TEST(BudgetLedger, ReopenPreservesBalancesExactly) {
  const std::string dir = FreshDir("reopen");
  // Irrational-ish charges so bit-exact replay is actually exercised.
  const std::vector<double> charges = {0.1, 0.2, 0.30000000000000004, 0.05};
  double expect_spent = 0.0;
  {
    auto ledger = BudgetLedger::Open(dir, {});
    ASSERT_NE(ledger, nullptr);
    ASSERT_TRUE(ledger->CreateTenant("a", 1.0));
    for (double eps : charges) {
      ASSERT_EQ(ledger->Charge("a", eps), ChargeResult::kCharged);
      expect_spent += eps;
    }
  }
  auto ledger = BudgetLedger::Open(dir, {});
  ASSERT_NE(ledger, nullptr);
  auto b = ledger->Balance("a");
  ASSERT_TRUE(b.has_value());
  // Replay applies the identical FP operations in the identical order.
  EXPECT_EQ(b->spent, expect_spent);
  EXPECT_EQ(b->total, 1.0);
  // A restart must not re-register the tenant with a fresh budget.
  EXPECT_FALSE(ledger->CreateTenant("a", 1.0));
  EXPECT_EQ(ledger->Balance("a")->spent, expect_spent);
  fs::remove_all(dir);
}

TEST(BudgetLedger, TornTailIsDroppedNotTrusted) {
  const std::string dir = FreshDir("torn");
  {
    auto ledger = BudgetLedger::Open(dir, {});
    ASSERT_NE(ledger, nullptr);
    ASSERT_TRUE(ledger->CreateTenant("a", 1.0));
    ASSERT_EQ(ledger->Charge("a", 0.25), ChargeResult::kCharged);
  }
  // Simulate a crash mid-append: garbage after the last intact record,
  // and no checkpoint (the crash happened before one was written).
  fs::remove(dir + "/ledger.ckpt");
  AppendBytes(dir + "/ledger.data", {0x45, 0x4B, 0x4C, 0x52, 0xDE, 0xAD});

  auto ledger = BudgetLedger::Open(dir, {});
  ASSERT_NE(ledger, nullptr);
  const auto st = ledger->stats();
  EXPECT_FALSE(st.recovered_from_checkpoint);
  EXPECT_EQ(st.replayed_records, 2u);  // create + charge
  EXPECT_EQ(st.torn_drops, 1u);
  ASSERT_TRUE(ledger->Balance("a").has_value());
  EXPECT_DOUBLE_EQ(ledger->Balance("a")->spent, 0.25);

  // The next append lands where the torn tail began; a further clean
  // reopen sees a fully intact log again.
  ASSERT_EQ(ledger->Charge("a", 0.5), ChargeResult::kCharged);
  ledger.reset();
  fs::remove(dir + "/ledger.ckpt");
  ledger = BudgetLedger::Open(dir, {});
  ASSERT_NE(ledger, nullptr);
  EXPECT_EQ(ledger->stats().torn_drops, 0u);
  EXPECT_DOUBLE_EQ(ledger->Balance("a")->spent, 0.75);
  fs::remove_all(dir);
}

TEST(BudgetLedger, CorruptCheckpointFallsBackToFullReplay) {
  const std::string dir = FreshDir("ckpt");
  {
    auto ledger = BudgetLedger::Open(dir, {});
    ASSERT_NE(ledger, nullptr);
    ASSERT_TRUE(ledger->CreateTenant("a", 1.0));
    ASSERT_EQ(ledger->Charge("a", 0.125), ChargeResult::kCharged);
    ledger->Checkpoint();
  }
  FlipByte(dir + "/ledger.ckpt", 20);
  auto ledger = BudgetLedger::Open(dir, {});
  ASSERT_NE(ledger, nullptr);
  EXPECT_FALSE(ledger->stats().recovered_from_checkpoint);
  EXPECT_EQ(ledger->stats().replayed_records, 2u);
  EXPECT_DOUBLE_EQ(ledger->Balance("a")->spent, 0.125);
  fs::remove_all(dir);
}

TEST(BudgetLedger, StaleCheckpointReplaysOnlyTheTail) {
  const std::string dir = FreshDir("stale");
  {
    auto ledger = BudgetLedger::Open(dir, {});
    ASSERT_NE(ledger, nullptr);
    ASSERT_TRUE(ledger->CreateTenant("a", 1.0));
    ASSERT_EQ(ledger->Charge("a", 0.125), ChargeResult::kCharged);
    ledger->Checkpoint();
  }
  // Preserve that checkpoint, append more charges, then put the stale
  // checkpoint back: recovery must seed from it and replay the tail.
  fs::copy_file(dir + "/ledger.ckpt", dir + "/ledger.ckpt.old");
  {
    auto ledger = BudgetLedger::Open(dir, {});
    ASSERT_NE(ledger, nullptr);
    ASSERT_EQ(ledger->Charge("a", 0.25), ChargeResult::kCharged);
    ASSERT_EQ(ledger->Charge("a", 0.0625), ChargeResult::kCharged);
  }
  fs::rename(dir + "/ledger.ckpt.old", dir + "/ledger.ckpt");

  auto ledger = BudgetLedger::Open(dir, {});
  ASSERT_NE(ledger, nullptr);
  const auto st = ledger->stats();
  EXPECT_TRUE(st.recovered_from_checkpoint);
  EXPECT_EQ(st.replayed_records, 2u);  // just the two post-checkpoint charges
  EXPECT_DOUBLE_EQ(ledger->Balance("a")->spent, 0.125 + 0.25 + 0.0625);
  fs::remove_all(dir);
}

TEST(BudgetLedger, DoubleFaultTornLogAndTornCheckpointStillRecovers) {
  const std::string dir = FreshDir("double_fault");
  {
    auto ledger = BudgetLedger::Open(dir, {});
    ASSERT_NE(ledger, nullptr);
    ASSERT_TRUE(ledger->CreateTenant("a", 1.0));
    ASSERT_EQ(ledger->Charge("a", 0.25), ChargeResult::kCharged);
    ledger->Checkpoint();
    ASSERT_EQ(ledger->Charge("a", 0.125), ChargeResult::kCharged);
  }
  // Worst-case crash: the checkpoint is corrupt AND the charge log has a
  // torn trailing append.  Recovery must not lean on either — full
  // replay of the intact prefix, torn tail dropped.
  FlipByte(dir + "/ledger.ckpt", 16);
  AppendBytes(dir + "/ledger.data", {0x45, 0x4B, 0x4C, 0x52, 0x01, 0x02});

  auto ledger = BudgetLedger::Open(dir, {});
  ASSERT_NE(ledger, nullptr);
  const auto st = ledger->stats();
  EXPECT_FALSE(st.recovered_from_checkpoint);
  EXPECT_EQ(st.replayed_records, 3u);  // create + both intact charges
  EXPECT_EQ(st.torn_drops, 1u);
  ASSERT_TRUE(ledger->Balance("a").has_value());
  // Both durable charges survive: a released answer is never forgotten.
  EXPECT_DOUBLE_EQ(ledger->Balance("a")->spent, 0.375);

  // The ledger stays fully writable after double-fault recovery.
  ASSERT_EQ(ledger->Charge("a", 0.5), ChargeResult::kCharged);
  ledger.reset();
  auto reopened = BudgetLedger::Open(dir, {});
  ASSERT_NE(reopened, nullptr);
  EXPECT_DOUBLE_EQ(reopened->Balance("a")->spent, 0.875);
  fs::remove_all(dir);
}

TEST(BudgetLedger, GarbageDataFileRefusesToOpen) {
  const std::string dir = FreshDir("garbage");
  ASSERT_TRUE(fs::create_directories(dir));
  AppendBytes(dir + "/ledger.data",
              {'n', 'o', 't', ' ', 'a', ' ', 'l', 'e', 'd', 'g', 'e', 'r'});
  // Budgets are not a cache: an unreadable ledger is an error, never a
  // silent re-initialization to "nothing spent".
  EXPECT_EQ(BudgetLedger::Open(dir, {}), nullptr);
  fs::remove_all(dir);
}

#ifndef _WIN32
TEST(BudgetLedger, WriterLockExcludesSecondOpenAndReclaimsDeadOwner) {
  const std::string dir = FreshDir("lock");
  auto ledger = BudgetLedger::Open(dir, {});
  ASSERT_NE(ledger, nullptr);
  EXPECT_EQ(BudgetLedger::Open(dir, {}), nullptr);  // live lock holder
  ledger.reset();

  // A lock left by a dead process (no such pid) is reclaimed.
  {
    std::FILE* f = std::fopen((dir + "/ledger.lock").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "999999999\n");
    std::fclose(f);
  }
  EXPECT_NE(BudgetLedger::Open(dir, {}), nullptr);
  fs::remove_all(dir);
}
#endif

TEST(BudgetLedger, ConcurrentChargesNeverOverspend) {
  const std::string dir = FreshDir("conc");
  const std::vector<std::string> tenants = {"a", "b", "c", "d"};
  const double total = 1.0, eps = 0.001;
  {
    auto ledger = BudgetLedger::Open(dir, {});
    ASSERT_NE(ledger, nullptr);
    for (const auto& t : tenants) ASSERT_TRUE(ledger->CreateTenant(t, total));

    // 8 threads hammer 4 tenants (two threads per tenant) well past
    // exhaustion; every admitted charge is durable, refusals are free.
    std::vector<std::thread> threads;
    for (int k = 0; k < 8; ++k)
      threads.emplace_back([&ledger, &tenants, k, eps] {
        const std::string& t = tenants[std::size_t(k) % tenants.size()];
        for (int i = 0; i < 700; ++i) (void)ledger->Charge(t, eps);
      });
    for (auto& th : threads) th.join();

    for (const auto& t : tenants) {
      const auto b = ledger->Balance(t);
      ASSERT_TRUE(b.has_value());
      EXPECT_LE(b->spent, total * (1.0 + 1e-9) + 1e-9);
      // 1400 attempted charges of 0.001 against 1.0: exhausted exactly.
      EXPECT_FALSE(ledger->CanCharge(t, eps));
    }
    EXPECT_GT(ledger->stats().refusals, 0u);
  }
  // Replay agrees with the in-memory accountant bit for bit.
  auto reopened = BudgetLedger::Open(dir, {});
  ASSERT_NE(reopened, nullptr);
  for (const auto& t : tenants) {
    const auto b = reopened->Balance(t);
    ASSERT_TRUE(b.has_value());
    EXPECT_LE(b->spent, total * (1.0 + 1e-9) + 1e-9);
    EXPECT_FALSE(reopened->CanCharge(t, eps));
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace ektelo::serve
