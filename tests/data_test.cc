// Tests for the data substrate: schema indexing, table transformations
// (semantics the kernel's stability bookkeeping relies on), vectorization
// layout, and the synthetic generators' shape properties.
#include <algorithm>
#include <cmath>

#include "data/generators.h"
#include "data/schema.h"
#include "data/table.h"
#include "gtest/gtest.h"
#include "linalg/vec.h"
#include "util/rng.h"

namespace ektelo {
namespace {

Schema SmallSchema() {
  return Schema({{"a", 3}, {"b", 2}, {"c", 4}});
}

TEST(SchemaTest, TotalDomainIsProduct) {
  EXPECT_EQ(SmallSchema().TotalDomainSize(), 24u);
}

TEST(SchemaTest, FlattenUnflattenRoundTrip) {
  Schema s = SmallSchema();
  for (std::size_t cell = 0; cell < 24; ++cell) {
    auto codes = s.UnflattenIndex(cell);
    EXPECT_EQ(s.FlattenIndex(codes), cell);
  }
}

TEST(SchemaTest, RowMajorLayoutAttr0Major) {
  Schema s = SmallSchema();
  // index = (a * 2 + b) * 4 + c
  EXPECT_EQ(s.FlattenIndex({1, 0, 2}), 1u * 8 + 0u * 4 + 2u);
  EXPECT_EQ(s.FlattenIndex({2, 1, 3}), 23u);
}

TEST(SchemaTest, ProjectPreservesOrder) {
  Schema s = SmallSchema();
  Schema p = s.Project({"c", "a"});
  EXPECT_EQ(p.num_attrs(), 2u);
  EXPECT_EQ(p.attr(0).name, "c");
  EXPECT_EQ(p.attr(1).domain_size, 3u);
}

Table ToyTable() {
  Table t(SmallSchema());
  t.AppendRow({0, 0, 0});
  t.AppendRow({0, 1, 2});
  t.AppendRow({1, 0, 3});
  t.AppendRow({1, 0, 3});
  t.AppendRow({2, 1, 1});
  return t;
}

TEST(TableTest, WhereFiltersConjunctively) {
  Table t = ToyTable();
  Table f = t.Where(Predicate::True()
                        .And("a", CmpOp::kGe, 1)
                        .And("b", CmpOp::kEq, 0));
  EXPECT_EQ(f.NumRows(), 2u);
  EXPECT_EQ(f.At(0, 2), 3u);
}

TEST(TableTest, WhereTrueKeepsAll) {
  EXPECT_EQ(ToyTable().Where(Predicate::True()).NumRows(), 5u);
}

TEST(TableTest, SelectProjectsColumns) {
  Table t = ToyTable().Select({"c", "b"});
  EXPECT_EQ(t.schema().num_attrs(), 2u);
  EXPECT_EQ(t.NumRows(), 5u);
  EXPECT_EQ(t.At(1, 0), 2u);  // c of row 1
  EXPECT_EQ(t.At(1, 1), 1u);  // b of row 1
}

TEST(TableTest, GroupByOneRowPerKey) {
  Table t = ToyTable().GroupBy({"a"});
  EXPECT_EQ(t.NumRows(), 3u);  // a in {0,1,2}
}

TEST(TableTest, SplitByPartitionIsDisjointAndComplete) {
  auto parts = ToyTable().SplitByPartition("b");
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].NumRows() + parts[1].NumRows(), 5u);
  EXPECT_EQ(parts[0].NumRows(), 3u);  // b == 0 rows
}

TEST(TableTest, VectorizeCountsCells) {
  Table t = ToyTable();
  Vec x = t.Vectorize();
  ASSERT_EQ(x.size(), 24u);
  EXPECT_DOUBLE_EQ(Sum(x), 5.0);
  // Two identical rows {1,0,3} -> cell (1*2+0)*4+3 = 11.
  EXPECT_DOUBLE_EQ(x[11], 2.0);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
}

TEST(TableTest, CountWhereMatchesWhere) {
  Table t = ToyTable();
  Predicate p = Predicate::True().And("a", CmpOp::kLe, 1);
  EXPECT_EQ(t.CountWhere(p), t.Where(p).NumRows());
}

TEST(TableTest, VectorizeOfSelectIsMarginal) {
  // Summing the full vector over attributes must equal the projected
  // table's vector (the identity behind marginal workloads).
  Table t = ToyTable();
  Vec full = t.Vectorize();
  Vec marg_a = t.Select({"a"}).Vectorize();
  ASSERT_EQ(marg_a.size(), 3u);
  for (std::size_t a = 0; a < 3; ++a) {
    double s = 0.0;
    for (std::size_t rest = 0; rest < 8; ++rest) s += full[a * 8 + rest];
    EXPECT_DOUBLE_EQ(marg_a[a], s);
  }
}

// ---------------------------------------------------------- generators

TEST(GeneratorsTest, HistogramsHaveRequestedScaleAndSize) {
  Rng rng(1);
  for (Shape1D s : AllShapes1D()) {
    SCOPED_TRACE(ShapeName(s));
    Vec h = MakeHistogram1D(s, 512, 10000.0, &rng);
    ASSERT_EQ(h.size(), 512u);
    for (double v : h) EXPECT_GE(v, 0.0);
    EXPECT_NEAR(Sum(h), 10000.0, 300.0);
  }
}

TEST(GeneratorsTest, ShapesAreDistinct) {
  Rng rng(2);
  // Sparse spikes should be mostly zero; uniform should not be.
  Vec spikes = MakeHistogram1D(Shape1D::kSparseSpikes, 1024, 5000.0, &rng);
  Vec uniform = MakeHistogram1D(Shape1D::kUniform, 1024, 5000.0, &rng);
  auto zero_frac = [](const Vec& v) {
    std::size_t z = 0;
    for (double x : v)
      if (x == 0.0) ++z;
    return double(z) / double(v.size());
  };
  EXPECT_GT(zero_frac(spikes), 0.8);
  EXPECT_LT(zero_frac(uniform), 0.2);
}

TEST(GeneratorsTest, Histogram2DShape) {
  Rng rng(3);
  Vec h = MakeHistogram2D(32, 16, 2000.0, &rng);
  ASSERT_EQ(h.size(), 512u);
  EXPECT_NEAR(Sum(h), 2000.0, 150.0);
}

TEST(GeneratorsTest, TableFromHistogramRoundTrips) {
  Rng rng(4);
  Vec h = MakeHistogram1D(Shape1D::kStep, 64, 500.0, &rng);
  Table t = TableFromHistogram(h, "v");
  Vec back = t.Vectorize();
  ASSERT_EQ(back.size(), h.size());
  for (std::size_t i = 0; i < h.size(); ++i) EXPECT_DOUBLE_EQ(back[i], h[i]);
}

TEST(GeneratorsTest, CensusLikeSchemaMatchesPaper) {
  Rng rng(5);
  Table t = MakeCensusLike(&rng, 2000, 5000);
  EXPECT_EQ(t.NumRows(), 2000u);
  EXPECT_EQ(t.schema().TotalDomainSize(), 5000u * 5 * 7 * 4 * 2);
  // Income should be heavy-tailed: the top bin region nearly empty.
  Vec inc = t.Select({"income"}).Vectorize();
  double low = 0.0, high = 0.0;
  for (std::size_t i = 0; i < 500; ++i) low += inc[i];
  for (std::size_t i = 4500; i < 5000; ++i) high += inc[i];
  EXPECT_GT(low, 10.0 * (high + 1.0));
}

TEST(GeneratorsTest, CreditLikeHasLabelSignal) {
  Rng rng(6);
  Table t = MakeCreditLike(&rng, 5000);
  EXPECT_EQ(t.schema().TotalDomainSize(), 2u * 28 * 11 * 8 * 7);
  // Mean of x3 should differ across labels (the classifier's signal).
  auto split = t.SplitByPartition("default");
  ASSERT_EQ(split.size(), 2u);
  auto mean_x3 = [](const Table& s) {
    double m = 0.0;
    for (std::size_t r = 0; r < s.NumRows(); ++r) m += s.At(r, 1);
    return m / double(s.NumRows());
  };
  EXPECT_GT(mean_x3(split[1]), mean_x3(split[0]) + 1.0);
  // Default rate near 22%.
  double rate = double(split[1].NumRows()) / double(t.NumRows());
  EXPECT_NEAR(rate, 0.22, 0.03);
}

}  // namespace
}  // namespace ektelo
