// Bitwise cross-target invariance of the SIMD kernel layer.
//
// The dispatch contract (linalg/simd/simd.h) says every compiled-in
// kernel table computes bitwise-identical results to the scalar table on
// every input.  This suite enforces it three ways:
//
//   1. Raw-kernel fuzz: randomized shapes, panel widths, sub-ranges,
//      misaligned interior pointers and ragged tails (sizes straddling
//      the 8-lane group and the 4-column dense unroll), comparing every
//      available target's output to scalar's byte for byte — including
//      that elements outside the kernel's assigned range are untouched.
//   2. Blocked entry points (DenseMatmat / CsrMatmat / Haar panels)
//      re-dispatched per target via SetActive, at several thread counts,
//      so target invariance and thread invariance are checked composed.
//   3. Registry-wide plan invariance: every registered plan produces the
//      same bits under every dispatch target (the CI scalar leg re-runs
//      the full tier-1 suite under EKTELO_SIMD=scalar for the same
//      property through the environment path).
//
// Also pins the allocator guarantees the kernels' callers rely on
// (64-byte alignment of AlignedVec-backed storage) and the EKTELO_SIMD
// selection logic itself.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "data/generators.h"
#include "gtest/gtest.h"
#include "linalg/block.h"
#include "linalg/csr.h"
#include "linalg/dense.h"
#include "linalg/haar.h"
#include "linalg/simd/simd.h"
#include "plans/registry.h"
#include "util/aligned.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/workloads.h"

namespace ektelo {
namespace {

bool SameBits(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

// Random values with the awkward payloads the bitwise contract is about:
// mixed magnitudes, exact zeros and negative zeros.
double FuzzValue(Rng* rng) {
  const double u = rng->Uniform();
  if (u < 0.05) return 0.0;
  if (u < 0.10) return -0.0;
  if (u < 0.20) return rng->Normal() * 1e-8;
  if (u < 0.30) return rng->Normal() * 1e8;
  return rng->Normal();
}

std::vector<double> FuzzVec(std::size_t n, Rng* rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = FuzzValue(rng);
  return v;
}

// Buffer with one leading slack element so kernels can be handed the
// deliberately 8-byte-misaligned interior pointer buf.data() + 1.
struct Misalignable {
  explicit Misalignable(std::vector<double> v) : buf(std::move(v)) {
    buf.insert(buf.begin(), 0.25);
  }
  const double* at(bool misalign) const { return buf.data() + (misalign ? 1 : 0); }
  std::vector<double> buf;
};

TEST(SimdKernelTest, ScalarTableAlwaysAvailableAndFirstIsBest) {
  const auto targets = simd::AvailableTargets();
  ASSERT_FALSE(targets.empty());
  EXPECT_NE(simd::FindTarget("scalar"), nullptr);
  // Best-first ordering: scalar is the last resort.
  EXPECT_STREQ(targets.back()->name, "scalar");
  for (const auto* t : targets) EXPECT_NE(simd::FindTarget(t->name), nullptr);
}

TEST(SimdKernelTest, EnvOverrideSelectsAndFallsBack) {
  setenv("EKTELO_SIMD", "scalar", 1);
  simd::ResetActive();
  EXPECT_STREQ(simd::Active().name, "scalar");
  // Unknown target: warns and falls back to the best available.
  setenv("EKTELO_SIMD", "vliw", 1);
  simd::ResetActive();
  EXPECT_STREQ(simd::Active().name, simd::AvailableTargets().front()->name);
  // Empty string behaves like unset (CI matrix legs pass "" for native).
  setenv("EKTELO_SIMD", "", 1);
  simd::ResetActive();
  EXPECT_STREQ(simd::Active().name, simd::AvailableTargets().front()->name);
  unsetenv("EKTELO_SIMD");
  simd::ResetActive();
  EXPECT_STREQ(simd::Active().name, simd::AvailableTargets().front()->name);
}

TEST(SimdKernelTest, AlignedAllocatorDelivers64ByteCachelinePaddedBuffers) {
  Rng rng(5);
  for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                        std::size_t{1000}}) {
    AlignedVec v(n, 1.0);
    EXPECT_TRUE(IsAligned64(v.data())) << n;
    DenseMatrix d(n, 3, 0.5);
    EXPECT_TRUE(IsAligned64(d.data().data())) << n;
    Block b(n, 2);
    EXPECT_TRUE(IsAligned64(b.data())) << n;
  }
  std::vector<Triplet> t{{0, 0, 1.0}, {1, 2, -2.0}, {3, 1, 0.5}};
  CsrMatrix c = CsrMatrix::FromTriplets(4, 3, t);
  EXPECT_TRUE(IsAligned64(c.values().data()));
}

TEST(SimdKernelTest, DenseMatmatRowsBitwiseEqualAcrossTargets) {
  const auto targets = simd::AvailableTargets();
  const simd::KernelTable* scalar = simd::FindTarget("scalar");
  ASSERT_NE(scalar, nullptr);
  Rng rng(101);
  for (int trial = 0; trial < 60; ++trial) {
    // Shapes straddle the 8-lane dot group and the 4-column unroll.
    const std::size_t m = std::size_t(rng.UniformInt(1, 17));
    const std::size_t n = std::size_t(rng.UniformInt(1, 29));
    const std::size_t k = std::size_t(rng.UniformInt(1, 11));
    const std::size_t i0 = std::size_t(rng.UniformInt(0, int64_t(m) - 1));
    const std::size_t i1 = std::size_t(rng.UniformInt(int64_t(i0), int64_t(m)));
    const bool mis = trial % 3 == 0;
    Misalignable a(FuzzVec(m * n, &rng));
    Misalignable x(FuzzVec(n * k, &rng));
    std::vector<double> y_ref(m * k, -777.25);
    scalar->dense_matmat_rows(a.at(mis), m, n, x.at(mis), y_ref.data(), k,
                              i0, i1);
    for (const auto* t : targets) {
      std::vector<double> y(m * k, -777.25);
      t->dense_matmat_rows(a.at(mis), m, n, x.at(mis), y.data(), k, i0, i1);
      // Bitwise equal inside [i0, i1), sentinel untouched outside.
      ASSERT_TRUE(SameBits(y_ref, y))
          << t->name << " trial " << trial << " m=" << m << " n=" << n
          << " k=" << k << " range=[" << i0 << "," << i1 << ")";
    }
  }
}

TEST(SimdKernelTest, DenseRmatMatColsBitwiseEqualAcrossTargets) {
  const auto targets = simd::AvailableTargets();
  const simd::KernelTable* scalar = simd::FindTarget("scalar");
  Rng rng(202);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t m = std::size_t(rng.UniformInt(1, 23));
    const std::size_t n = std::size_t(rng.UniformInt(1, 19));
    const std::size_t k = std::size_t(rng.UniformInt(1, 10));
    const std::size_t j0 = std::size_t(rng.UniformInt(0, int64_t(n) - 1));
    const std::size_t j1 = std::size_t(rng.UniformInt(int64_t(j0), int64_t(n)));
    const bool mis = trial % 3 == 1;
    Misalignable a(FuzzVec(m * n, &rng));
    Misalignable x(FuzzVec(m * k, &rng));
    std::vector<double> y_ref(n * k, -777.25);
    scalar->dense_rmatmat_cols(a.at(mis), m, n, x.at(mis), y_ref.data(), k,
                               j0, j1);
    for (const auto* t : targets) {
      std::vector<double> y(n * k, -777.25);
      t->dense_rmatmat_cols(a.at(mis), m, n, x.at(mis), y.data(), k, j0, j1);
      ASSERT_TRUE(SameBits(y_ref, y))
          << t->name << " trial " << trial << " m=" << m << " n=" << n
          << " k=" << k << " range=[" << j0 << "," << j1 << ")";
    }
  }
}

CsrMatrix RandomCsr(std::size_t m, std::size_t n, double density, Rng* rng) {
  std::vector<Triplet> t;
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (rng->Uniform() < density) t.push_back({i, j, FuzzValue(rng)});
  return CsrMatrix::FromTriplets(m, n, std::move(t));
}

TEST(SimdKernelTest, CsrKernelsBitwiseEqualAcrossTargets) {
  const auto targets = simd::AvailableTargets();
  const simd::KernelTable* scalar = simd::FindTarget("scalar");
  Rng rng(303);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t m = std::size_t(rng.UniformInt(1, 20));
    const std::size_t n = std::size_t(rng.UniformInt(1, 20));
    const std::size_t k = std::size_t(rng.UniformInt(1, 13));
    CsrMatrix c = RandomCsr(m, n, rng.Uniform(), &rng);
    const bool mis = trial % 3 == 2;
    Misalignable xf(FuzzVec(n * k, &rng));  // row-major n x k
    Misalignable xt(FuzzVec(m * k, &rng));  // row-major m x k
    // Forward sweep over output rows [i0, i1).
    const std::size_t i0 = std::size_t(rng.UniformInt(0, int64_t(m) - 1));
    const std::size_t i1 = std::size_t(rng.UniformInt(int64_t(i0), int64_t(m)));
    std::vector<double> yf_ref(m * k, 0.0);
    scalar->csr_matmat_rows(c.indptr().data(), c.indices().data(),
                            c.values().data(), xf.at(mis), yf_ref.data(), k,
                            i0, i1);
    // Transposed sweep over packed columns [c0, c1).
    const std::size_t c0 = std::size_t(rng.UniformInt(0, int64_t(k) - 1));
    const std::size_t c1 = std::size_t(rng.UniformInt(int64_t(c0), int64_t(k)));
    std::vector<double> yt_ref(n * k, 0.0);
    scalar->csr_rmatmat_cols(c.indptr().data(), c.indices().data(),
                             c.values().data(), m, xt.at(mis), yt_ref.data(),
                             k, c0, c1);
    for (const auto* t : targets) {
      std::vector<double> yf(m * k, 0.0), yt(n * k, 0.0);
      t->csr_matmat_rows(c.indptr().data(), c.indices().data(),
                         c.values().data(), xf.at(mis), yf.data(), k, i0, i1);
      t->csr_rmatmat_cols(c.indptr().data(), c.indices().data(),
                          c.values().data(), m, xt.at(mis), yt.data(), k, c0,
                          c1);
      ASSERT_TRUE(SameBits(yf_ref, yf)) << t->name << " fwd trial " << trial;
      ASSERT_TRUE(SameBits(yt_ref, yt)) << t->name << " T trial " << trial;
    }
  }
}

TEST(SimdKernelTest, HaarPanelsBitwiseEqualAcrossTargets) {
  const auto targets = simd::AvailableTargets();
  const simd::KernelTable* scalar = simd::FindTarget("scalar");
  Rng rng(404);
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{8},
                        std::size_t{64}, std::size_t{256}}) {
    for (int trial = 0; trial < 12; ++trial) {
      const std::size_t k = std::size_t(rng.UniformInt(1, 13));
      const bool mis = trial % 2 == 1;
      Misalignable x(FuzzVec(n * k, &rng));
      std::vector<double> ya_ref(n * k), ys_ref(n * k);
      scalar->haar_analysis_cols(x.at(mis), ya_ref.data(), n, k);
      scalar->haar_synthesis_cols(x.at(mis), ys_ref.data(), n, k);
      for (const auto* t : targets) {
        std::vector<double> ya(n * k), ys(n * k);
        t->haar_analysis_cols(x.at(mis), ya.data(), n, k);
        t->haar_synthesis_cols(x.at(mis), ys.data(), n, k);
        ASSERT_TRUE(SameBits(ya_ref, ya))
            << t->name << " analysis n=" << n << " k=" << k;
        ASSERT_TRUE(SameBits(ys_ref, ys))
            << t->name << " synthesis n=" << n << " k=" << k;
      }
    }
  }
}

// RAII dispatch override around the blocked entry points.
struct TargetGuard {
  explicit TargetGuard(const simd::KernelTable* t) { simd::SetActive(t); }
  ~TargetGuard() { simd::ResetActive(); }
};

TEST(SimdKernelTest, BlockedEntryPointsInvariantAcrossTargetsAndThreads) {
  const auto targets = simd::AvailableTargets();
  Rng rng(505);
  const std::size_t m = 37, n = 53, k = 9, hn = 128;
  DenseMatrix d(m, n);
  for (auto& v : d.data()) v = FuzzValue(&rng);
  CsrMatrix c = RandomCsr(m, n, 0.3, &rng);
  const std::vector<double> xf = FuzzVec(n * k, &rng);
  const std::vector<double> xt = FuzzVec(m * k, &rng);
  const std::vector<double> xh = FuzzVec(hn * k, &rng);

  // Reference: scalar table, serial pool.
  ThreadPool::Global().Resize(0);
  std::vector<double> r1(m * k), r2(n * k), r3(m * k), r4(n * k), r5(hn * k),
      r6(hn * k);
  {
    TargetGuard g(simd::FindTarget("scalar"));
    DenseMatmat(d, xf.data(), r1.data(), k);
    DenseRmatMat(d, xt.data(), r2.data(), k);
    CsrMatmat(c, xf.data(), r3.data(), k);
    CsrRmatMat(c, xt.data(), r4.data(), k);
    HaarAnalysisBlock(xh.data(), r5.data(), hn, k);
    HaarSynthesisBlock(xh.data(), r6.data(), hn, k);
  }
  for (const auto* t : targets) {
    for (std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
      SCOPED_TRACE(std::string(t->name) + " threads=" +
                   std::to_string(threads));
      ThreadPool::Global().Resize(threads);
      TargetGuard g(t);
      std::vector<double> y1(m * k), y2(n * k), y3(m * k), y4(n * k),
          y5(hn * k), y6(hn * k);
      DenseMatmat(d, xf.data(), y1.data(), k);
      DenseRmatMat(d, xt.data(), y2.data(), k);
      CsrMatmat(c, xf.data(), y3.data(), k);
      CsrRmatMat(c, xt.data(), y4.data(), k);
      HaarAnalysisBlock(xh.data(), y5.data(), hn, k);
      HaarSynthesisBlock(xh.data(), y6.data(), hn, k);
      EXPECT_TRUE(SameBits(r1, y1)) << "DenseMatmat";
      EXPECT_TRUE(SameBits(r2, y2)) << "DenseRmatMat";
      EXPECT_TRUE(SameBits(r3, y3)) << "CsrMatmat";
      EXPECT_TRUE(SameBits(r4, y4)) << "CsrRmatMat";
      EXPECT_TRUE(SameBits(r5, y5)) << "HaarAnalysisBlock";
      EXPECT_TRUE(SameBits(r6, y6)) << "HaarSynthesisBlock";
    }
  }
  ThreadPool::Global().Resize(ThreadPool::DefaultThreadCount());
}

// One end-to-end plan execution under a given dispatch target.
Vec RunPlanWithTarget(const Plan& plan, const simd::KernelTable* target) {
  TargetGuard g(target);
  const double eps = 0.5;
  Rng rng(17);
  Vec hist;
  std::vector<std::size_t> dims;
  switch (plan.domain()) {
    case DomainKind::k1D:
      dims = {64};
      hist = MakeHistogram1D(Shape1D::kStep, 64, 2000.0, &rng);
      break;
    case DomainKind::k2D:
      dims = {8, 8};
      hist = MakeHistogram2D(8, 8, 2000.0, &rng);
      break;
    case DomainKind::kMultiDim:
      dims = {16, 2, 2};
      hist = MakeHistogram1D(Shape1D::kStep, 64, 2000.0, &rng);
      break;
  }
  const std::size_t n = hist.size();
  auto ranges = RandomRanges(20, n, 16, &rng);
  auto w = RangeQueryOp(ranges, n);

  ProtectedKernel kernel(TableFromHistogram(hist, "v"), eps, 424242);
  ProtectedTable root = ProtectedTable::Root(&kernel);
  auto x = root.Vectorize();
  EK_CHECK(x.ok());
  BudgetScope scope(eps);
  Rng client_rng(99);
  PlanInput in;
  in.dims = dims;
  in.ranges = ranges;
  in.workload = w;
  in.workload_factors = {w};
  in.known_total = Sum(hist);
  in.rng = &client_rng;
  in.stripe_dim = 0;
  StatusOr<Vec> xhat = plan.Execute(*x, scope, in);
  EK_CHECK(xhat.ok());
  return *xhat;
}

TEST(SimdKernelTest, EveryRegisteredPlanIsBitwiseTargetInvariant) {
  const auto targets = simd::AvailableTargets();
  const std::vector<const Plan*> catalog = PlanRegistry::Global().Catalog();
  ASSERT_FALSE(catalog.empty());
  ThreadPool::Global().Resize(0);
  for (const Plan* plan : catalog) {
    SCOPED_TRACE(plan->name());
    const Vec ref = RunPlanWithTarget(*plan, simd::FindTarget("scalar"));
    for (const auto* t : targets) {
      SCOPED_TRACE(t->name);
      const Vec out = RunPlanWithTarget(*plan, t);
      ASSERT_EQ(out.size(), ref.size());
      for (std::size_t i = 0; i < ref.size(); ++i)
        ASSERT_EQ(out[i], ref[i]) << "component " << i;
    }
  }
  ThreadPool::Global().Resize(ThreadPool::DefaultThreadCount());
}

}  // namespace
}  // namespace ektelo
