// Tests for the Naive-Bayes case study: AUC computation, model fitting,
// the four DP histogram-estimation plans, and the cross-validation
// harness's ordering of methods (Fig. 3's qualitative claims).
#include <cmath>

#include "classify/evaluation.h"
#include "classify/naive_bayes.h"
#include "classify/nb_plans.h"
#include "data/generators.h"
#include "gtest/gtest.h"

namespace ektelo {
namespace {

TEST(AucTest, PerfectSeparationIsOne) {
  EXPECT_DOUBLE_EQ(
      AreaUnderRoc({0.1, 0.2, 0.8, 0.9}, {0, 0, 1, 1}), 1.0);
}

TEST(AucTest, ReverseSeparationIsZero) {
  EXPECT_DOUBLE_EQ(
      AreaUnderRoc({0.9, 0.8, 0.2, 0.1}, {0, 0, 1, 1}), 0.0);
}

TEST(AucTest, TiesGiveHalf) {
  EXPECT_DOUBLE_EQ(AreaUnderRoc({0.5, 0.5, 0.5, 0.5}, {0, 1, 0, 1}), 0.5);
}

TEST(AucTest, DegenerateLabelsGiveHalf) {
  EXPECT_DOUBLE_EQ(AreaUnderRoc({0.1, 0.9}, {1, 1}), 0.5);
}

TEST(AucTest, MixedCase) {
  // scores: pos {3, 1}, neg {2, 0}: pairs (3>2),(3>0),(1<2),(1>0) = 3/4.
  EXPECT_DOUBLE_EQ(AreaUnderRoc({3, 2, 1, 0}, {1, 0, 1, 0}), 0.75);
}

NbHistograms ToyHistograms() {
  // One predictor with domain 2: value 1 strongly indicates label 1.
  NbHistograms h;
  h.label_hist = {50.0, 50.0};
  h.predictor_domains = {2};
  h.joint_hists = {{45.0, 5.0, 10.0, 40.0}};  // y-major
  return h;
}

TEST(NaiveBayesTest, FitAndScoreDirections) {
  NaiveBayesModel m = NaiveBayesModel::Fit(ToyHistograms());
  EXPECT_GT(m.Score({1}), 0.0);
  EXPECT_LT(m.Score({0}), 0.0);
}

TEST(NaiveBayesTest, NegativeNoisyCountsAreClamped) {
  NbHistograms h = ToyHistograms();
  h.joint_hists[0][0] = -3.0;  // noisy negative
  NaiveBayesModel m = NaiveBayesModel::Fit(h);
  EXPECT_TRUE(std::isfinite(m.Score({0})));
}

TEST(NbPlansTest, ExactHistogramsMatchTable) {
  Rng rng(1);
  Table t = MakeCreditLike(&rng, 2000);
  NbHistograms h = ExactNbHistograms(t);
  EXPECT_EQ(h.joint_hists.size(), 4u);
  EXPECT_NEAR(Sum(h.label_hist), 2000.0, 1e-9);
  for (const auto& j : h.joint_hists) EXPECT_NEAR(Sum(j), 2000.0, 1e-9);
}

TEST(NbPlansTest, AllPlansRunOnBudget) {
  Rng rng(2);
  Table t = MakeCreditLike(&rng, 1500);
  for (NbPlanKind kind :
       {NbPlanKind::kIdentity, NbPlanKind::kWorkload,
        NbPlanKind::kWorkloadLs, NbPlanKind::kSelectLs}) {
    SCOPED_TRACE(NbPlanName(kind));
    auto h = EstimateNbHistograms(kind, t, 0.5, 42, &rng);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h->joint_hists.size(), 4u);
    EXPECT_EQ(h->joint_hists[0].size(), 2u * 28);
  }
}

TEST(NbPlansTest, HighEpsHistogramsNearExact) {
  Rng rng(3);
  Table t = MakeCreditLike(&rng, 2000);
  NbHistograms exact = ExactNbHistograms(t);
  auto h = EstimateNbHistograms(NbPlanKind::kWorkloadLs, t, 1000.0, 43,
                                &rng);
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(h->label_hist[0], exact.label_hist[0], 2.0);
  EXPECT_NEAR(h->label_hist[1], exact.label_hist[1], 2.0);
}

TEST(EvaluationTest, KFoldPartitionsRows) {
  Rng rng(4);
  auto folds = KFoldIndices(103, 10, &rng);
  std::size_t total = 0;
  std::vector<int> seen(103, 0);
  for (const auto& f : folds) {
    total += f.size();
    for (std::size_t r : f) seen[r]++;
  }
  EXPECT_EQ(total, 103u);
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(EvaluationTest, UnperturbedClassifierHasSignal) {
  Rng rng(5);
  Table t = MakeCreditLike(&rng, 4000);
  NbEvalResult res = EvaluateNbClassifier(std::nullopt, t, 0.0, 5, 1, &rng);
  EXPECT_GT(res.Median(), 0.70);
}

TEST(EvaluationTest, HighEpsApproachesUnperturbed) {
  Rng rng(6);
  Table t = MakeCreditLike(&rng, 3000);
  NbEvalResult clean = EvaluateNbClassifier(std::nullopt, t, 0.0, 5, 1,
                                            &rng);
  NbEvalResult dp = EvaluateNbClassifier(NbPlanKind::kWorkloadLs, t, 10.0,
                                         5, 1, &rng);
  EXPECT_NEAR(dp.Median(), clean.Median(), 0.03);
}

TEST(EvaluationTest, TinyEpsDegradesTowardChance) {
  Rng rng(7);
  Table t = MakeCreditLike(&rng, 3000);
  NbEvalResult dp = EvaluateNbClassifier(NbPlanKind::kWorkload, t, 1e-4, 5,
                                         1, &rng);
  EXPECT_NEAR(dp.Median(), 0.5, 0.12);
}

TEST(EvaluationTest, PercentilesOrdered) {
  NbEvalResult r;
  r.fold_aucs = {0.3, 0.9, 0.5, 0.7, 0.6};
  EXPECT_LE(r.Percentile(25), r.Percentile(50));
  EXPECT_LE(r.Percentile(50), r.Percentile(75));
  EXPECT_DOUBLE_EQ(r.Median(), 0.6);
}

}  // namespace
}  // namespace ektelo
