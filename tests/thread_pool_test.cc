// Unit tests for the deterministic parallel execution engine.
#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <vector>

#include "gtest/gtest.h"

namespace ektelo {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (std::size_t n : {0u, 1u, 7u, 64u, 1000u}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h = 0;
    pool.ParallelFor(n, 3, [&](std::size_t b, std::size_t e) {
      ASSERT_LE(b, e);
      ASSERT_LE(e, n);
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, ZeroWorkersRunsSerially) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.threads(), 0u);
  std::size_t calls = 0;
  pool.ParallelFor(100, 1, [&](std::size_t b, std::size_t e) {
    // Serial mode must be a single [0, n) chunk on the calling thread.
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 100u);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ThreadPoolTest, RespectsGrain) {
  ThreadPool pool(8);
  std::mutex mu;
  std::vector<std::size_t> sizes;
  pool.ParallelFor(100, 40, [&](std::size_t b, std::size_t e) {
    std::lock_guard<std::mutex> lock(mu);
    sizes.push_back(e - b);
  });
  std::size_t total = 0;
  for (std::size_t s : sizes) {
    EXPECT_GE(s, 20u);  // never smaller than the final partial chunk
    total += s;
  }
  EXPECT_EQ(total, 100u);
  EXPECT_LE(sizes.size(), 3u);  // ceil(100/40) chunks at most
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(8, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      // A nested call from a worker (or the participating caller) must
      // complete without deadlock.
      pool.ParallelFor(10, 1, [&](std::size_t ib, std::size_t ie) {
        inner_total.fetch_add(static_cast<int>(ie - ib));
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 80);
}

TEST(ThreadPoolTest, ParallelBranchesReturnsLowestIndexedError) {
  ThreadPool pool(4);
  Status st = pool.ParallelBranches(10, [&](std::size_t b) -> Status {
    if (b == 7) return Status::Internal("late failure");
    if (b == 3) return Status::InvalidArgument("early failure");
    return Status::Ok();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "early failure");
}

TEST(ThreadPoolTest, ParallelBranchesRunsEveryBranch) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(25);
  for (auto& h : hits) h = 0;
  ASSERT_TRUE(pool.ParallelBranches(25, [&](std::size_t b) -> Status {
                    hits[b].fetch_add(1);
                    return Status::Ok();
                  }).ok());
  for (std::size_t b = 0; b < 25; ++b) EXPECT_EQ(hits[b].load(), 1);
}

TEST(ThreadPoolTest, ResizeChangesWorkerCount) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  pool.Resize(4);
  EXPECT_EQ(pool.threads(), 4u);
  std::atomic<int> total{0};
  pool.ParallelFor(64, 1, [&](std::size_t b, std::size_t e) {
    total.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(total.load(), 64);
  pool.Resize(0);
  EXPECT_EQ(pool.threads(), 0u);
}

TEST(ThreadPoolTest, DefaultThreadCountParsesEnv) {
  setenv("EKTELO_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 3u);
  setenv("EKTELO_THREADS", "0", 1);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 0u);
  const std::size_t hw_default = [] {
    unsetenv("EKTELO_THREADS");
    return ThreadPool::DefaultThreadCount();
  }();
  // Signed, malformed or absurd values must fall back to the hardware
  // default, never sign-wrap through strtoul into a 2^64-thread request.
  for (const char* bad : {"-1", "+2", "1e9", "999999999999", "lots", ""}) {
    setenv("EKTELO_THREADS", bad, 1);
    EXPECT_EQ(ThreadPool::DefaultThreadCount(), hw_default) << bad;
  }
  unsetenv("EKTELO_THREADS");
}

}  // namespace
}  // namespace ektelo
