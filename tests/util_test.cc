// Tests for the util substrate: Status/StatusOr semantics and the
// statistical properties of the Rng distributions every mechanism relies on.
#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"
#include "util/status.h"

namespace ektelo {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::BudgetExhausted("eps 0.5 requested, 0.1 left");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kBudgetExhausted);
  EXPECT_NE(s.ToString().find("BUDGET_EXHAUSTED"), std::string::npos);
  EXPECT_NE(s.ToString().find("0.1 left"), std::string::npos);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::InvalidArgument("bad"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::vector<double>> v(std::vector<double>{1.0, 2.0});
  ASSERT_TRUE(v.ok());
  std::vector<double> taken = std::move(v).value();
  EXPECT_EQ(taken.size(), 2u);
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Laplace(1.0), b.Laplace(1.0));
}

TEST(RngTest, LaplaceMeanAndVariance) {
  // Laplace(0, b) has mean 0 and variance 2 b^2.
  Rng rng(42);
  const double b = 2.0;
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Laplace(b);
    sum += x;
    sum2 += x * x;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 2.0 * b * b, 0.25);
}

TEST(RngTest, LaplaceTailIsExponential) {
  // P(|X| > t) = exp(-t/b): check at t = b and t = 3b.
  Rng rng(43);
  const double b = 1.0;
  const int n = 100000;
  int over1 = 0, over3 = 0;
  for (int i = 0; i < n; ++i) {
    double x = std::abs(rng.Laplace(b));
    if (x > 1.0) ++over1;
    if (x > 3.0) ++over3;
  }
  EXPECT_NEAR(static_cast<double>(over1) / n, std::exp(-1.0), 0.01);
  EXPECT_NEAR(static_cast<double>(over3) / n, std::exp(-3.0), 0.005);
}

TEST(RngTest, LaplaceVectorSize) {
  Rng rng(5);
  auto v = rng.LaplaceVector(17, 0.5);
  EXPECT_EQ(v.size(), 17u);
}

TEST(RngTest, ExponentialMechanismPrefersHighScores) {
  // With a large eps the mechanism should almost always pick the argmax.
  Rng rng(11);
  std::vector<double> scores = {0.0, 1.0, 10.0, 2.0};
  int hits = 0;
  for (int i = 0; i < 1000; ++i)
    if (rng.ExponentialMechanism(scores, 50.0) == 2) ++hits;
  EXPECT_GT(hits, 990);
}

TEST(RngTest, ExponentialMechanismRatioBound) {
  // For two candidates with score gap g, P[best]/P[other] should be close
  // to exp(eps * g / 2); check the empirical ratio is in the right regime.
  Rng rng(13);
  std::vector<double> scores = {0.0, 1.0};
  const double eps = 2.0;
  int pick1 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i)
    if (rng.ExponentialMechanism(scores, eps) == 1) ++pick1;
  double ratio = static_cast<double>(pick1) / (n - pick1);
  EXPECT_NEAR(ratio, std::exp(eps * 1.0 / 2.0), 0.15);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(17);
  std::vector<double> w = {1.0, 3.0};
  int c1 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.Categorical(w) == 1) ++c1;
  EXPECT_NEAR(static_cast<double>(c1) / n, 0.75, 0.01);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng a(23);
  Rng b = a.Fork();
  // Streams should differ (same seed would be a bug).
  bool any_diff = false;
  for (int i = 0; i < 10; ++i)
    if (a.Uniform() != b.Uniform()) any_diff = true;
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace ektelo
