// Budget composition through the typed client API: nested BudgetScope
// splits sum to the parent, scope-level exhaustion fires before the
// kernel, parallel composition across VSplitByPartition children via
// typed handles, and transcript entries carry the scope-effective eps.
#include <cmath>

#include "data/generators.h"
#include "gtest/gtest.h"
#include "kernel/budget.h"
#include "kernel/handles.h"
#include "matrix/implicit_ops.h"

namespace ektelo {
namespace {

Table UniformTable(std::size_t domain, std::size_t per_cell) {
  Table t(Schema({{"v", domain}}));
  for (std::size_t i = 0; i < domain; ++i)
    for (std::size_t c = 0; c < per_cell; ++c)
      t.AppendRow({static_cast<uint32_t>(i)});
  return t;
}

TEST(BudgetScopeTest, SplitSharesSumToParent) {
  BudgetScope scope(1.0);
  auto parts = scope.Split({0.25, 0.75});
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->size(), 2u);
  EXPECT_DOUBLE_EQ((*parts)[0].total(), 0.25);
  EXPECT_DOUBLE_EQ((*parts)[1].total(), 0.75);
  EXPECT_DOUBLE_EQ((*parts)[0].total() + (*parts)[1].total(), 1.0);
  // A fully split scope has reserved everything.
  EXPECT_DOUBLE_EQ(scope.remaining(), 0.0);
}

TEST(BudgetScopeTest, NestedSplitsSumToParent) {
  BudgetScope scope(0.8);
  auto outer = scope.Split({0.5, 0.5});
  ASSERT_TRUE(outer.ok());
  auto inner = (*outer)[1].Split({0.3, 0.7});
  ASSERT_TRUE(inner.ok());
  // Inner children sum to exactly the parent's allowance, even with
  // fractions that do not divide evenly in binary.
  EXPECT_DOUBLE_EQ((*inner)[0].total() + (*inner)[1].total(),
                   (*outer)[1].total());
  EXPECT_DOUBLE_EQ((*outer)[1].remaining(), 0.0);
}

TEST(BudgetScopeTest, PartialSplitLeavesRemainder) {
  BudgetScope scope(1.0);
  auto parts = scope.Split({0.25});
  ASSERT_TRUE(parts.ok());
  EXPECT_DOUBLE_EQ((*parts)[0].total(), 0.25);
  EXPECT_DOUBLE_EQ(scope.remaining(), 0.75);
}

TEST(BudgetScopeTest, InvalidSplitsRejected) {
  BudgetScope scope(1.0);
  EXPECT_FALSE(scope.Split({}).ok());
  EXPECT_FALSE(scope.Split({-0.1, 0.5}).ok());
  EXPECT_FALSE(scope.Split({0.7, 0.7}).ok());
  // Nothing was reserved by the failed attempts.
  EXPECT_DOUBLE_EQ(scope.remaining(), 1.0);
}

TEST(BudgetScopeTest, ChargeInExactPiecesSpendsExactly) {
  BudgetScope scope(1.0);
  for (int i = 0; i < 16; ++i)
    ASSERT_TRUE(scope.Charge(1.0 / 16.0).ok()) << i;
  EXPECT_TRUE(scope.exhausted());
  EXPECT_FALSE(scope.Charge(0.01).ok());
  EXPECT_GE(scope.remaining(), 0.0);
}

TEST(BudgetScopeTest, ScopeExhaustionFiresBeforeKernel) {
  // The kernel has plenty of budget; the plan's scope does not.  The
  // refusal must be scope-local: no kernel charge, no transcript entry.
  ProtectedKernel kernel(UniformTable(8, 2), 1.0, 1);
  ProtectedTable root = ProtectedTable::Root(&kernel);
  auto x = root.Vectorize();
  ASSERT_TRUE(x.ok());
  BudgetScope scope(0.2);
  auto denied = x->Laplace(*MakeIdentityOp(8), 0.3, scope);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kBudgetExhausted);
  EXPECT_DOUBLE_EQ(kernel.BudgetConsumed(), 0.0);
  EXPECT_TRUE(kernel.transcript().empty());
  // The scope itself is untouched by the refused request.
  EXPECT_DOUBLE_EQ(scope.remaining(), 0.2);
}

TEST(BudgetScopeTest, KernelRefusalRefundsScope) {
  // A scope sized beyond the kernel's real budget: the kernel's verdict
  // wins and the scope charge is rolled back.
  ProtectedKernel kernel(UniformTable(4, 1), 0.1, 2);
  ProtectedTable root = ProtectedTable::Root(&kernel);
  auto x = root.Vectorize();
  ASSERT_TRUE(x.ok());
  BudgetScope scope(1.0);
  auto denied = x->Laplace(*MakeTotalOp(4), 0.5, scope);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kBudgetExhausted);
  EXPECT_DOUBLE_EQ(scope.spent(), 0.0);
}

TEST(BudgetScopeTest, ParallelCompositionAcrossSplitChildren) {
  // VSplitByPartition children measured under SplitParallel sub-scopes:
  // every child may spend the full reserved allowance, and the kernel
  // root is charged the max, not the sum.
  ProtectedKernel kernel(UniformTable(8, 3), 1.0, 3);
  ProtectedTable root = ProtectedTable::Root(&kernel);
  auto x = root.Vectorize();
  ASSERT_TRUE(x.ok());
  auto children = x->SplitByPartition(Partition::FromIntervals({0, 4}, 8));
  ASSERT_TRUE(children.ok());
  ASSERT_EQ(children->size(), 2u);

  BudgetScope scope(1.0);
  auto branch = scope.Split({0.4, 0.6});
  ASSERT_TRUE(branch.ok());
  auto child_scopes = (*branch)[0].SplitParallel(children->size());
  ASSERT_TRUE(child_scopes.ok());
  for (std::size_t c = 0; c < children->size(); ++c) {
    auto y = (*children)[c].Laplace(*MakeIdentityOp(4), 0.4,
                                    (*child_scopes)[c]);
    ASSERT_TRUE(y.ok()) << c;
  }
  // Parallel composition: both children spent 0.4, the root saw 0.4.
  EXPECT_NEAR(kernel.BudgetConsumed(), 0.4, 1e-12);
  // The reserved branch is spent regardless; the sibling branch is
  // untouched and still spendable.
  auto y = x->Laplace(*MakeIdentityOp(8), 0.6, (*branch)[1]);
  ASSERT_TRUE(y.ok());
  EXPECT_NEAR(kernel.BudgetConsumed(), 1.0, 1e-9);
}

TEST(BudgetScopeTest, TranscriptCarriesScopeEffectiveEps) {
  // Nested splits 1.0 -> {0.25, 0.75} -> second into {0.5, 0.5}: each
  // measurement must appear in the public transcript with exactly the eps
  // its scope derived (0.25, 0.375, 0.375), summing to the root total.
  ProtectedKernel kernel(UniformTable(8, 2), 1.0, 4);
  ProtectedTable root = ProtectedTable::Root(&kernel);
  auto x = root.Vectorize();
  ASSERT_TRUE(x.ok());

  BudgetScope scope(kernel.BudgetRemaining());
  auto outer = scope.Split({0.25, 0.75});
  ASSERT_TRUE(outer.ok());
  auto inner = (*outer)[1].Split({0.5, 0.5});
  ASSERT_TRUE(inner.ok());

  BudgetScope* stages[3] = {&(*outer)[0], &(*inner)[0], &(*inner)[1]};
  const double expected_eps[3] = {0.25, 0.375, 0.375};
  for (int s = 0; s < 3; ++s) {
    auto y = x->Laplace(*MakeTotalOp(8), stages[s]->remaining(), *stages[s]);
    ASSERT_TRUE(y.ok()) << s;
  }
  ASSERT_EQ(kernel.transcript().size(), 3u);
  for (int s = 0; s < 3; ++s) {
    EXPECT_DOUBLE_EQ(kernel.transcript()[s].eps, expected_eps[s]) << s;
    EXPECT_TRUE(stages[s]->exhausted()) << s;
  }
  EXPECT_NEAR(kernel.BudgetConsumed(), 1.0, 1e-9);
}

TEST(BudgetScopeTest, TypedWrapRejectsKindMismatch) {
  ProtectedKernel kernel(UniformTable(4, 1), 1.0, 5);
  auto bad_vec = ProtectedVector::Wrap(&kernel, kernel.root());
  EXPECT_FALSE(bad_vec.ok());
  ProtectedTable root = ProtectedTable::Root(&kernel);
  auto x = root.Vectorize();
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(x->size(), 4u);
  auto bad_table = ProtectedTable::Wrap(&kernel, x->id());
  EXPECT_FALSE(bad_table.ok());
}

TEST(BudgetScopeTest, TableHandleChainMirrorsKernelOps) {
  Rng rng(6);
  Table t(Schema({{"a", 4}, {"b", 2}}));
  for (int i = 0; i < 64; ++i)
    t.AppendRow({static_cast<uint32_t>(rng.UniformInt(0, 3)),
                 static_cast<uint32_t>(rng.UniformInt(0, 1))});
  ProtectedKernel kernel(t, 1.0, 6);
  ProtectedTable root = ProtectedTable::Root(&kernel);
  auto filtered = root.Where(Predicate::True().And("b", CmpOp::kEq, 1));
  ASSERT_TRUE(filtered.ok());
  auto selected = filtered->Select({"a"});
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->schema().TotalDomainSize(), 4u);
  auto x = selected->Vectorize();
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(x->size(), 4u);
  BudgetScope scope(1.0);
  auto count = filtered->NoisyCount(0.5, scope);
  ASSERT_TRUE(count.ok());
  EXPECT_NEAR(scope.spent(), 0.5, 1e-12);
  EXPECT_NEAR(kernel.BudgetConsumed(), 0.5, 1e-12);
}

}  // namespace
}  // namespace ektelo
