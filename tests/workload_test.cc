// Tests for workload constructors and workload-based domain reduction
// (Sec. 8): Algorithm 4 grouping, Prop. 8.3 losslessness, Thm. 8.4
// error monotonicity (spot-checked via matrix-mechanism error).
#include <cmath>

#include "data/schema.h"
#include "gtest/gtest.h"
#include "matrix/combinators.h"
#include "matrix/implicit_ops.h"
#include "ops/hdmm.h"
#include "util/rng.h"
#include "workload/reduction.h"
#include "workload/workloads.h"

namespace ektelo {
namespace {

Vec RandomCounts(std::size_t n, Rng* rng) {
  Vec v(n);
  for (auto& x : v) x = std::floor(rng->Uniform(0.0, 20.0));
  return v;
}

TEST(WorkloadTest, RangeQueryOpAnswersRangeSums) {
  Vec x = {1, 2, 3, 4, 5};
  auto w = RangeQueryOp({{0, 4}, {1, 3}, {2, 2}}, 5);
  Vec y = w->Apply(x);
  EXPECT_DOUBLE_EQ(y[0], 15.0);
  EXPECT_DOUBLE_EQ(y[1], 9.0);
  EXPECT_DOUBLE_EQ(y[2], 3.0);
}

TEST(WorkloadTest, RangeOpIsBinaryWithUnitSensitivityPerCover) {
  auto w = RangeQueryOp({{0, 2}, {3, 4}}, 5);  // disjoint
  EXPECT_DOUBLE_EQ(w->SensitivityL1(), 1.0);
  auto w2 = RangeQueryOp({{0, 2}, {1, 4}}, 5);  // overlapping
  EXPECT_DOUBLE_EQ(w2->SensitivityL1(), 2.0);
}

TEST(WorkloadTest, RandomRangesRespectWidthCap) {
  Rng rng(1);
  auto qs = RandomRanges(200, 100, 10, &rng);
  for (const auto& q : qs) {
    EXPECT_LE(q.hi - q.lo + 1, 10u);
    EXPECT_LT(q.hi, 100u);
  }
}

TEST(WorkloadTest, AllRangeCount) {
  auto w = AllRangeWorkload(6);
  EXPECT_EQ(w->rows(), 21u);
}

TEST(WorkloadTest, RectangleWorkloadMatchesBruteForce) {
  Rng rng(2);
  const std::size_t nx = 7, ny = 5;
  Vec x = RandomCounts(nx * ny, &rng);
  auto w = RandomRectangleWorkload(20, nx, ny, 0, &rng);
  DenseMatrix d = w->MaterializeDense();
  // Every row must be a 0/1 rectangle indicator: entries in {0,1} and
  // the answer equals a contiguous 2D block sum.
  Vec y = w->Apply(x);
  for (std::size_t r = 0; r < d.rows(); ++r) {
    double manual = 0.0;
    for (std::size_t c = 0; c < nx * ny; ++c) {
      EXPECT_TRUE(d.At(r, c) == 0.0 || d.At(r, c) == 1.0);
      manual += d.At(r, c) * x[c];
    }
    EXPECT_NEAR(y[r], manual, 1e-9);
  }
}

TEST(WorkloadTest, MarginalWorkloadSumsOutOthers) {
  Schema s({{"a", 2}, {"b", 3}, {"c", 2}});
  auto w = MarginalWorkload(s, {"b"});
  EXPECT_EQ(w->rows(), 3u);
  Vec x(12, 1.0);
  Vec y = w->Apply(x);
  for (double v : y) EXPECT_DOUBLE_EQ(v, 4.0);  // 2*2 cells per b value
}

TEST(WorkloadTest, AllTwoWayMarginalsShape) {
  Schema s({{"a", 2}, {"b", 3}, {"c", 4}});
  auto w = AllKWayMarginals(s, 2);
  EXPECT_EQ(w->rows(), 2u * 3 + 2u * 4 + 3u * 4);
  EXPECT_EQ(w->cols(), 24u);
}

TEST(WorkloadTest, CensusWorkloadShape) {
  Schema s({{"income", 16}, {"age", 3}, {"gender", 2}});
  auto w = CensusPrefixIncomeWorkload(s);
  // Prefix(16) x (Total+Identity)(3+1=4 rows) x (Total+Identity)(3 rows).
  EXPECT_EQ(w->rows(), 16u * 4 * 3);
  EXPECT_EQ(w->cols(), 16u * 3 * 2);
  // Row for (income <= all, any age, any gender) = total.
  Vec x(96, 1.0);
  Vec y = w->Apply(x);
  // The last income prefix with both <any> selectors: index (15, 0, 0) in
  // row-major over (16, 4, 3) = 15*12.
  EXPECT_DOUBLE_EQ(y[15 * 12], 96.0);
}

// ------------------------------------------------------- Sec. 8 reduction

TEST(ReductionTest, GroupsIdenticalColumns) {
  // Workload asks only about [0,1] and [2,3]: columns {0,1} and {2,3}
  // are interchangeable.
  Rng rng(3);
  auto w = RangeQueryOp({{0, 1}, {2, 3}}, 4);
  Partition p = WorkloadBasedPartition(*w, &rng);
  EXPECT_EQ(p.num_groups(), 2u);
  EXPECT_EQ(p.group_of(0), p.group_of(1));
  EXPECT_EQ(p.group_of(2), p.group_of(3));
  EXPECT_NE(p.group_of(0), p.group_of(2));
}

TEST(ReductionTest, IdentityWorkloadAdmitsNoReduction) {
  Rng rng(4);
  auto w = MakeIdentityOp(8);
  Partition p = WorkloadBasedPartition(*w, &rng);
  EXPECT_EQ(p.num_groups(), 8u);
}

TEST(ReductionTest, TotalWorkloadReducesToOneCell) {
  Rng rng(5);
  Partition p = WorkloadBasedPartition(*MakeTotalOp(10), &rng);
  EXPECT_EQ(p.num_groups(), 1u);
}

TEST(ReductionTest, MarginalExampleFromPaper) {
  // Example 8.1: two disjoint salary-range/sex queries need only 2 cells
  // ... emulated as two disjoint 1D ranges covering part of the domain:
  // cells outside any query also form groups.
  Rng rng(6);
  auto w = RangeQueryOp({{0, 3}, {4, 7}}, 10);
  Partition p = WorkloadBasedPartition(*w, &rng);
  EXPECT_EQ(p.num_groups(), 3u);  // [0-3], [4-7], untouched [8-9]
}

TEST(ReductionTest, LosslessProp83) {
  // W x == W' x' for random workloads with duplicated columns.
  Rng rng(7);
  auto w = RangeQueryOp({{0, 3}, {0, 7}, {4, 7}, {8, 11}}, 12);
  Partition p = WorkloadBasedPartition(*w, &rng);
  LinOpPtr w_red = ReduceWorkload(w, p);
  Vec x = RandomCounts(12, &rng);
  Vec x_red = p.ReduceOp()->Apply(x);
  Vec lhs = w->Apply(x);
  Vec rhs = w_red->Apply(x_red);
  ASSERT_EQ(lhs.size(), rhs.size());
  for (std::size_t i = 0; i < lhs.size(); ++i)
    EXPECT_NEAR(lhs[i], rhs[i], 1e-9);
}

TEST(ReductionTest, PseudoInverseIsPtDinv) {
  Partition p({0, 0, 1, 0, 1}, 2);
  DenseMatrix pinv = p.PseudoInverseMatrix().ToDense();
  EXPECT_DOUBLE_EQ(pinv.At(0, 0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(pinv.At(2, 1), 1.0 / 2.0);
  // P * P+ = I_p.
  DenseMatrix prod = p.ReduceMatrix().ToDense().Matmul(pinv);
  EXPECT_TRUE(prod.ApproxEquals(DenseMatrix::Identity(2), 1e-12));
}

TEST(ReductionTest, ExpandEstimateUniform) {
  Partition p({0, 0, 1}, 2);
  Vec x = ExpandEstimate(p, {6.0, 5.0});
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 3.0);
  EXPECT_DOUBLE_EQ(x[2], 5.0);
}

TEST(ReductionTest, Theorem84ErrorNeverWorseAfterReduction) {
  // Matrix-mechanism expected error of answering W via the (reduced)
  // Identity strategy should not increase after workload-based reduction.
  Rng rng(8);
  auto w = RangeQueryOp({{0, 3}, {4, 7}, {0, 7}}, 8);
  Partition p = WorkloadBasedPartition(*w, &rng);
  ASSERT_LT(p.num_groups(), 8u);
  LinOpPtr w_red = ReduceWorkload(w, p);
  const double err_full = MatrixMechanismTse(*w, *MakeIdentityOp(8));
  const double err_red =
      MatrixMechanismTse(*w_red, *MakeIdentityOp(p.num_groups()));
  EXPECT_LE(err_red, err_full + 1e-9);
}

TEST(ReductionTest, WorksOnImplicitKroneckerWorkloads) {
  // A marginal workload over a 3-attr domain: reduction should collapse
  // the summed-out attributes.
  Schema s({{"a", 3}, {"b", 4}, {"c", 2}});
  auto w = MarginalWorkload(s, {"a"});
  Rng rng(9);
  Partition p = WorkloadBasedPartition(*w, &rng);
  EXPECT_EQ(p.num_groups(), 3u);
}

}  // namespace
}  // namespace ektelo
