// Property tests for the implicit-matrix engine: every LinOp's primitive
// methods must agree exactly with its materialized form (implicit
// representations are lossless, paper Sec. 7.2).
#include <cmath>
#include <memory>

#include "gtest/gtest.h"
#include "linalg/haar.h"
#include "matrix/combinators.h"
#include "matrix/implicit_ops.h"
#include "matrix/linop.h"
#include "matrix/range_ops.h"
#include "util/rng.h"

namespace ektelo {
namespace {

Vec RandomVec(std::size_t n, Rng* rng) {
  Vec v(n);
  for (auto& x : v) x = rng->Normal();
  return v;
}

CsrMatrix RandomSparse(std::size_t m, std::size_t n, Rng* rng,
                       double density = 0.3) {
  std::vector<Triplet> t;
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (rng->Uniform() < density) t.push_back({i, j, rng->Normal()});
  return CsrMatrix::FromTriplets(m, n, std::move(t));
}

/// The core invariant: all primitive methods of `op` agree with the
/// explicitly materialized matrix.
void CheckAgainstMaterialized(const LinOp& op, Rng* rng, double tol = 1e-9) {
  SCOPED_TRACE(op.DebugName());
  DenseMatrix d = op.MaterializeDense();
  ASSERT_EQ(d.rows(), op.rows());
  ASSERT_EQ(d.cols(), op.cols());

  // Apply / ApplyT.
  Vec x = RandomVec(op.cols(), rng);
  Vec y1 = op.Apply(x);
  Vec y2 = d.Matvec(x);
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_NEAR(y1[i], y2[i], tol);
  Vec u = RandomVec(op.rows(), rng);
  Vec z1 = op.ApplyT(u);
  Vec z2 = d.RmatVec(u);
  for (std::size_t j = 0; j < z1.size(); ++j) EXPECT_NEAR(z1[j], z2[j], tol);

  // Abs / Sqr.
  DenseMatrix da = op.Abs()->MaterializeDense();
  DenseMatrix ds = op.Sqr()->MaterializeDense();
  EXPECT_TRUE(da.ApproxEquals(d.Abs(), tol));
  EXPECT_TRUE(ds.ApproxEquals(d.Sqr(), tol));

  // Sensitivity.
  EXPECT_NEAR(op.SensitivityL1(), d.MaxColNormL1(), tol);
  EXPECT_NEAR(op.SensitivityL2(), d.MaxColNormL2(), tol);

  // Sparse materialization agrees with dense.
  EXPECT_TRUE(op.MaterializeSparse().ToDense().ApproxEquals(d, tol));
}

TEST(LinOpTest, DenseOpMatchesItself) {
  Rng rng(1);
  DenseMatrix d(3, 4);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 4; ++j) d.At(i, j) = rng.Normal();
  auto op = MakeDense(d);
  CheckAgainstMaterialized(*op, &rng);
}

TEST(LinOpTest, SparseOp) {
  Rng rng(2);
  auto op = MakeSparse(RandomSparse(6, 9, &rng));
  CheckAgainstMaterialized(*op, &rng);
}

TEST(LinOpTest, Identity) {
  Rng rng(3);
  CheckAgainstMaterialized(*MakeIdentityOp(7), &rng);
}

TEST(LinOpTest, OnesAndTotal) {
  Rng rng(4);
  CheckAgainstMaterialized(*MakeOnesOp(3, 5), &rng);
  CheckAgainstMaterialized(*MakeTotalOp(6), &rng);
}

TEST(LinOpTest, PrefixAndSuffix) {
  Rng rng(5);
  CheckAgainstMaterialized(*MakePrefixOp(9), &rng);
  CheckAgainstMaterialized(*MakeSuffixOp(9), &rng);
}

TEST(LinOpTest, Wavelet) {
  Rng rng(6);
  CheckAgainstMaterialized(*MakeWaveletOp(16), &rng);
}

TEST(LinOpTest, PrefixOfTotalIsCdfQueries) {
  // Prefix * x gives the empirical CDF numerators of Algorithm 1.
  auto p = MakePrefixOp(4);
  Vec x = {1.0, 2.0, 3.0, 4.0};
  Vec y = p->Apply(x);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[3], 10.0);
}

TEST(LinOpTest, TransposeView) {
  Rng rng(7);
  auto op = MakeTranspose(MakePrefixOp(8));
  CheckAgainstMaterialized(*op, &rng);
  auto twice = MakeTranspose(op);
  CheckAgainstMaterialized(*twice, &rng);
}

TEST(LinOpTest, VStack) {
  Rng rng(8);
  auto op = MakeVStack({MakeIdentityOp(6), MakeTotalOp(6), MakePrefixOp(6)});
  EXPECT_EQ(op->rows(), 13u);
  CheckAgainstMaterialized(*op, &rng);
}

TEST(LinOpTest, VStackMixedSigns) {
  Rng rng(9);
  auto op = MakeVStack(
      {MakeSparse(RandomSparse(4, 5, &rng)), MakeIdentityOp(5)});
  CheckAgainstMaterialized(*op, &rng);
}

TEST(LinOpTest, Product) {
  Rng rng(10);
  auto a = MakeSparse(RandomSparse(4, 6, &rng));
  auto b = MakeSparse(RandomSparse(6, 5, &rng));
  auto op = MakeProduct(a, b);
  CheckAgainstMaterialized(*op, &rng);
}

TEST(LinOpTest, RangeQueriesAsSparseTimesPrefix) {
  // Example 7.4: range query [i, j] = prefix(j) - prefix(i-1).
  // Rows: [1,3], [3,4], [0,3], [1,1] on a domain of 5.
  std::vector<Triplet> t = {{0, 3, 1.0}, {0, 0, -1.0}, {1, 4, 1.0},
                            {1, 2, -1.0}, {2, 3, 1.0},  {3, 1, 1.0},
                            {3, 0, -1.0}};
  auto s = MakeSparse(CsrMatrix::FromTriplets(4, 5, std::move(t)));
  auto ranges = MakeProduct(s, MakePrefixOp(5), /*binary_hint=*/true);
  DenseMatrix d = ranges->MaterializeDense();
  // Row 0 should be the indicator of [1,3].
  EXPECT_DOUBLE_EQ(d.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(d.At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(d.At(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(d.At(0, 3), 1.0);
  EXPECT_DOUBLE_EQ(d.At(0, 4), 0.0);
  // Binary hint makes Abs a no-op view of the same operator.
  Rng rng(11);
  CheckAgainstMaterialized(*ranges, &rng);
}

TEST(LinOpTest, KroneckerAgainstDense) {
  Rng rng(12);
  auto a = MakeSparse(RandomSparse(3, 4, &rng));
  auto b = MakeSparse(RandomSparse(2, 5, &rng));
  CheckAgainstMaterialized(*MakeKronecker(a, b), &rng);
}

TEST(LinOpTest, KroneckerOfImplicits) {
  Rng rng(13);
  auto op = MakeKronecker(MakePrefixOp(4), MakeIdentityOp(3));
  CheckAgainstMaterialized(*op, &rng);
  auto op3 = MakeKronecker(
      {MakeTotalOp(3), MakeIdentityOp(2), MakePrefixOp(2)});
  CheckAgainstMaterialized(*op3, &rng);
}

TEST(LinOpTest, KroneckerMixedProductProperty) {
  // (A ⊗ B)(x ⊗ y) = (A x) ⊗ (B y).
  Rng rng(14);
  auto a = MakePrefixOp(4);
  auto b = MakeSparse(RandomSparse(3, 5, &rng));
  auto k = MakeKronecker(a, b);
  Vec x = RandomVec(4, &rng);
  Vec y = RandomVec(5, &rng);
  Vec xy(4 * 5);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 5; ++j) xy[i * 5 + j] = x[i] * y[j];
  Vec lhs = k->Apply(xy);
  Vec ax = a->Apply(x);
  Vec by = b->Apply(y);
  for (std::size_t i = 0; i < ax.size(); ++i)
    for (std::size_t j = 0; j < by.size(); ++j)
      EXPECT_NEAR(lhs[i * by.size() + j], ax[i] * by[j], 1e-9);
}

TEST(LinOpTest, RowWeight) {
  Rng rng(15);
  auto child = MakeSparse(RandomSparse(5, 7, &rng));
  Vec w = RandomVec(5, &rng);
  CheckAgainstMaterialized(*MakeRowWeight(child, w), &rng);
}

TEST(LinOpTest, ScaledOperator) {
  Rng rng(16);
  auto op = MakeScaled(MakeIdentityOp(4), 2.5);
  DenseMatrix d = op->MaterializeDense();
  EXPECT_DOUBLE_EQ(d.At(2, 2), 2.5);
  CheckAgainstMaterialized(*op, &rng);
}

TEST(LinOpTest, RowIndexing) {
  // Table 1: w_i = W^T e_i.
  auto p = MakePrefixOp(5);
  Vec row2 = RowOf(*p, 2);
  for (std::size_t j = 0; j < 5; ++j)
    EXPECT_DOUBLE_EQ(row2[j], j <= 2 ? 1.0 : 0.0);
}

TEST(LinOpTest, GramSparseMatchesDense) {
  Rng rng(17);
  auto op = MakeVStack({MakeIdentityOp(6), MakePrefixOp(6)});
  DenseMatrix g1 = GramSparse(*op).ToDense();
  DenseMatrix d = op->MaterializeDense();
  DenseMatrix g2 = d.Gram();
  EXPECT_TRUE(g1.ApproxEquals(g2, 1e-9));
}

TEST(LinOpTest, MarginalsAsKroneckers) {
  // Example 7.5: W13 = I ⊗ Total ⊗ I sums out the middle attribute.
  auto w13 = MakeKronecker(
      {MakeIdentityOp(2), MakeTotalOp(3), MakeIdentityOp(2)});
  EXPECT_EQ(w13->rows(), 4u);
  EXPECT_EQ(w13->cols(), 12u);
  Vec x(12);
  for (std::size_t i = 0; i < 12; ++i) x[i] = static_cast<double>(i);
  Vec y = w13->Apply(x);
  // Cell (a=0, c=0) = x[(0,b,0)] summed over b = x0 + x2·? layout: index =
  // a*6 + b*2 + c; so (0,*,0) -> {0, 2, 4}.
  EXPECT_DOUBLE_EQ(y[0], 0.0 + 2.0 + 4.0);
  EXPECT_DOUBLE_EQ(y[3], 7.0 + 9.0 + 11.0);
}

TEST(LinOpTest, SensitivityOfUnionIsColumnSum) {
  // Union stacks queries, so sensitivities add per column:
  // Identity (1) + Total (1) => 2.
  auto op = MakeVStack({MakeIdentityOp(5), MakeTotalOp(5)});
  EXPECT_DOUBLE_EQ(op->SensitivityL1(), 2.0);
  EXPECT_DOUBLE_EQ(op->SensitivityL2(), std::sqrt(2.0));
}

TEST(LinOpTest, KroneckerSensitivityFactorizes) {
  auto h = MakeVStack({MakeIdentityOp(4), MakeTotalOp(4)});  // L1 = 2
  auto k = MakeKronecker(h, h);
  EXPECT_DOUBLE_EQ(k->SensitivityL1(), 4.0);
}

// Parameterized sweep: materialization equivalence across shapes.
class LinOpSweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LinOpSweepTest, CoreOpsLossless) {
  const std::size_t n = GetParam();
  Rng rng(100 + n);
  CheckAgainstMaterialized(*MakeIdentityOp(n), &rng);
  CheckAgainstMaterialized(*MakePrefixOp(n), &rng);
  CheckAgainstMaterialized(*MakeSuffixOp(n), &rng);
  CheckAgainstMaterialized(*MakeTotalOp(n), &rng);
  if (IsPowerOfTwo(n)) CheckAgainstMaterialized(*MakeWaveletOp(n), &rng);
  CheckAgainstMaterialized(
      *MakeVStack({MakeIdentityOp(n), MakePrefixOp(n)}), &rng);
}

INSTANTIATE_TEST_SUITE_P(Shapes, LinOpSweepTest,
                         ::testing::Values(1, 2, 3, 8, 13, 16, 31, 64));

TEST(RangeOpsTest, RangeSetMatchesMaterialized) {
  Rng rng(30);
  auto op = MakeRangeSetOp({{0, 4}, {2, 2}, {3, 7}, {0, 7}}, 8);
  CheckAgainstMaterialized(*op, &rng);
}

TEST(RangeOpsTest, RangeSetSensitivityIsMaxCoverage) {
  auto op = MakeRangeSetOp({{0, 3}, {2, 5}, {2, 2}}, 8);
  EXPECT_DOUBLE_EQ(op->SensitivityL1(), 3.0);  // cell 2 covered thrice
  EXPECT_DOUBLE_EQ(op->SensitivityL2(), std::sqrt(3.0));
}

TEST(RangeOpsTest, RectangleSetMatchesMaterialized) {
  Rng rng(31);
  auto op = MakeRectangleSetOp(
      {{0, 2, 1, 3}, {1, 1, 0, 0}, {0, 3, 0, 4}}, 4, 5);
  CheckAgainstMaterialized(*op, &rng);
}

TEST(RangeOpsTest, RectangleSensitivity) {
  auto op = MakeRectangleSetOp({{0, 1, 0, 1}, {1, 2, 1, 2}}, 3, 3);
  EXPECT_DOUBLE_EQ(op->SensitivityL1(), 2.0);  // cell (1,1) in both
}

TEST(RangeOpsTest, SparseNnzIsCoveredCells) {
  auto op = MakeRangeSetOp({{0, 3}, {5, 5}}, 8);
  EXPECT_EQ(op->MaterializeSparse().nnz(), 5u);
}

// PrefixOp identity: suffix is the transpose of prefix.
TEST(LinOpTest, SuffixIsPrefixTranspose) {
  auto p = MakePrefixOp(6);
  auto s = MakeSuffixOp(6);
  EXPECT_TRUE(s->MaterializeDense().ApproxEquals(
      p->MaterializeDense().Transpose(), 1e-12));
}

}  // namespace
}  // namespace ektelo
