// End-to-end tests of the Fig. 2 plan catalog: every plan runs against a
// protected kernel, spends exactly its budget, and produces estimates with
// sane error; data-dependent plans beat data-independent ones on the data
// shapes they target; matrix mode does not change plan semantics.
#include <cmath>

#include "data/generators.h"
#include "gtest/gtest.h"
#include "matrix/implicit_ops.h"
#include "plans/case_studies.h"
#include "plans/grid_plans.h"
#include "plans/plans.h"
#include "plans/striped_plans.h"
#include "workload/workloads.h"

namespace ektelo {
namespace {

struct Env {
  ProtectedKernel kernel;
  PlanContext ctx;
  Vec x_true;
  Rng rng;

  Env(Vec hist, std::vector<std::size_t> dims, double eps, uint64_t seed,
      Rng* client_rng)
      : kernel(TableFromHistogram(hist, "v"), eps, seed),
        ctx(),
        x_true(std::move(hist)),
        rng(seed + 999) {
    auto x = kernel.TVectorize(kernel.root());
    EXPECT_TRUE(x.ok());
    ctx.kernel = &kernel;
    ctx.x = *x;
    ctx.dims = std::move(dims);
    ctx.eps = eps;
    ctx.rng = client_rng ? client_rng : &rng;
  }
};

double ScaledErr(const Vec& xhat, const Vec& x_true) {
  return Rmse(xhat, x_true) / std::max(Sum(x_true), 1.0);
}

TEST(PlansTest, IdentityPlanUnbiasedAndOnBudget) {
  Rng rng(1);
  Vec hist = MakeHistogram1D(Shape1D::kGaussianMix, 64, 5000.0, &rng);
  Env env(hist, {64}, 1.0, 11, &rng);
  auto xhat = RunIdentityPlan(env.ctx);
  ASSERT_TRUE(xhat.ok());
  EXPECT_NEAR(env.kernel.BudgetConsumed(), 1.0, 1e-9);
  EXPECT_LT(Rmse(*xhat, env.x_true), 3.0);  // noise scale 1/eps = 1
}

TEST(PlansTest, UniformPlanSpreadsTotal) {
  Rng rng(2);
  Vec hist(32, 10.0);
  Env env(hist, {32}, 5.0, 12, &rng);
  auto xhat = RunUniformPlan(env.ctx);
  ASSERT_TRUE(xhat.ok());
  // All cells should be (nearly) equal and close to 10.
  for (double v : *xhat) EXPECT_NEAR(v, (*xhat)[0], 1e-6);
  EXPECT_NEAR((*xhat)[0], 10.0, 1.0);
}

TEST(PlansTest, HierarchicalPlansBeatIdentityOnPrefixQueries) {
  // For CDF-style workloads, H2/HB answer long ranges with O(log n)
  // noisy nodes vs O(n) for Identity.
  Rng rng(3);
  const std::size_t n = 1024;
  Vec hist = MakeHistogram1D(Shape1D::kBimodal, n, 20000.0, &rng);
  auto prefix = MakePrefixOp(n);
  double err_id = 0.0, err_h2 = 0.0, err_hb = 0.0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    Env e1(hist, {n}, 0.1, 100 + t, &rng);
    Env e2(hist, {n}, 0.1, 200 + t, &rng);
    Env e3(hist, {n}, 0.1, 300 + t, &rng);
    auto x1 = RunIdentityPlan(e1.ctx);
    auto x2 = RunH2Plan(e2.ctx);
    auto x3 = RunHbPlan(e3.ctx);
    ASSERT_TRUE(x1.ok() && x2.ok() && x3.ok());
    err_id += Rmse(prefix->Apply(*x1), prefix->Apply(e1.x_true));
    err_h2 += Rmse(prefix->Apply(*x2), prefix->Apply(e2.x_true));
    err_hb += Rmse(prefix->Apply(*x3), prefix->Apply(e3.x_true));
  }
  EXPECT_LT(err_h2, err_id);
  EXPECT_LT(err_hb, err_id);
}

TEST(PlansTest, PriveletErrorIsFlatAcrossRangeLengths) {
  // Privelet's signature property (Xiao et al.): range-query error grows
  // polylogarithmically with range length, whereas Identity's grows as
  // sqrt(length).  Compare the long-range/short-range error ratio.
  Rng rng(4);
  const std::size_t n = 1024;
  Vec hist = MakeHistogram1D(Shape1D::kGaussianMix, n, 50000.0, &rng);
  auto long_q = RangeQueryOp({{0, n - 1}, {0, n / 2}, {n / 4, n - 1}}, n);
  auto short_q = RangeQueryOp({{0, 0}, {n / 2, n / 2}, {7, 8}}, n);
  double long_p = 0.0, short_p = 0.0, long_id = 0.0, short_id = 0.0;
  for (int t = 0; t < 8; ++t) {
    Env e1(hist, {n}, 0.1, 400 + t, &rng);
    Env e2(hist, {n}, 0.1, 500 + t, &rng);
    auto xp = RunPriveletPlan(e1.ctx);
    auto xi = RunIdentityPlan(e2.ctx);
    ASSERT_TRUE(xp.ok() && xi.ok());
    long_p += Rmse(long_q->Apply(*xp), long_q->Apply(e1.x_true));
    short_p += Rmse(short_q->Apply(*xp), short_q->Apply(e1.x_true));
    long_id += Rmse(long_q->Apply(*xi), long_q->Apply(e2.x_true));
    short_id += Rmse(short_q->Apply(*xi), short_q->Apply(e2.x_true));
  }
  // Identity's long/short ratio ~ sqrt(n); Privelet's is polylog.
  EXPECT_LT(long_p / short_p, 0.3 * long_id / short_id);
  // And on the long ranges themselves Privelet should win outright.
  EXPECT_LT(long_p, long_id);
}

TEST(PlansTest, PriveletRejectsNonPowerOfTwo) {
  Rng rng(5);
  Vec hist(12, 1.0);
  Env env(hist, {12}, 1.0, 13, &rng);
  EXPECT_FALSE(RunPriveletPlan(env.ctx).ok());
}

TEST(PlansTest, GreedyHRunsAndIsAccurateOnItsWorkload) {
  Rng rng(6);
  const std::size_t n = 256;
  Vec hist = MakeHistogram1D(Shape1D::kStep, n, 10000.0, &rng);
  auto ranges = RandomRanges(100, n, 32, &rng);
  auto w_op = RangeQueryOp(ranges, n);
  Env env(hist, {n}, 0.5, 14, &rng);
  auto xhat = RunGreedyHPlan(env.ctx, ranges);
  ASSERT_TRUE(xhat.ok());
  EXPECT_NEAR(env.kernel.BudgetConsumed(), 0.5, 1e-9);
  EXPECT_LT(ScaledErr(w_op->Apply(*xhat), w_op->Apply(env.x_true)), 0.05);
}

TEST(PlansTest, DawaBeatsIdentityOnStepData) {
  // DAWA's partition exploits uniform regions (its design target).  The
  // scale keeps step boundaries detectable above the stage-1 noise, as in
  // DPBench's DAWA-favorable datasets.
  Rng rng(7);
  const std::size_t n = 512;
  Vec hist = MakeHistogram1D(Shape1D::kStep, n, 500000.0, &rng);
  auto ranges = RandomRanges(200, n, 64, &rng);
  auto w_op = RangeQueryOp(ranges, n);
  double err_dawa = 0.0, err_id = 0.0;
  for (int t = 0; t < 5; ++t) {
    Env e1(hist, {n}, 0.05, 600 + t, &rng);
    Env e2(hist, {n}, 0.05, 700 + t, &rng);
    auto xd = RunDawaPlan(e1.ctx, ranges);
    auto xi = RunIdentityPlan(e2.ctx);
    ASSERT_TRUE(xd.ok() && xi.ok());
    EXPECT_NEAR(e1.kernel.BudgetConsumed(), 0.05, 1e-9);
    err_dawa += Rmse(w_op->Apply(*xd), w_op->Apply(e1.x_true));
    err_id += Rmse(w_op->Apply(*xi), w_op->Apply(e2.x_true));
  }
  EXPECT_LT(err_dawa, err_id);
}

TEST(PlansTest, AhpRunsOnBudgetAndNonNegative) {
  Rng rng(8);
  const std::size_t n = 256;
  Vec hist = MakeHistogram1D(Shape1D::kSparseSpikes, n, 5000.0, &rng);
  Env env(hist, {n}, 0.2, 15, &rng);
  auto xhat = RunAhpPlan(env.ctx);
  ASSERT_TRUE(xhat.ok());
  EXPECT_NEAR(env.kernel.BudgetConsumed(), 0.2, 1e-9);
  for (double v : *xhat) EXPECT_GE(v, -1e-9);
}

TEST(PlansTest, MwemImprovesWithRounds) {
  Rng rng(9);
  const std::size_t n = 128;
  Vec hist = MakeHistogram1D(Shape1D::kClustered, n, 10000.0, &rng);
  auto ranges = RandomRanges(64, n, 32, &rng);
  auto w_op = RangeQueryOp(ranges, n);
  const double total = Sum(hist);
  double err1 = 0.0, err8 = 0.0;
  for (int t = 0; t < 3; ++t) {
    Env e1(hist, {n}, 0.5, 800 + t, &rng);
    Env e2(hist, {n}, 0.5, 900 + t, &rng);
    auto x1 = RunMwemPlan(e1.ctx, ranges,
                          {.rounds = 1, .known_total = total});
    auto x8 = RunMwemPlan(e2.ctx, ranges,
                          {.rounds = 8, .known_total = total});
    ASSERT_TRUE(x1.ok() && x8.ok());
    EXPECT_NEAR(e2.kernel.BudgetConsumed(), 0.5, 1e-9);
    err1 += Rmse(w_op->Apply(*x1), w_op->Apply(e1.x_true));
    err8 += Rmse(w_op->Apply(*x8), w_op->Apply(e2.x_true));
  }
  EXPECT_LT(err8, err1);
}

TEST(PlansTest, MwemVariantsRunOnBudget) {
  Rng rng(10);
  const std::size_t n = 128;
  Vec hist = MakeHistogram1D(Shape1D::kStep, n, 8000.0, &rng);
  auto ranges = RandomRanges(50, n, 32, &rng);
  const double total = Sum(hist);
  for (bool augment : {false, true}) {
    for (bool nnls : {false, true}) {
      Env env(hist, {n}, 0.4, 16 + (augment ? 1 : 0) + (nnls ? 2 : 0),
              &rng);
      auto xhat = RunMwemPlan(env.ctx, ranges,
                              {.rounds = 5,
                               .augment_h2 = augment,
                               .nnls_inference = nnls,
                               .known_total = total});
      ASSERT_TRUE(xhat.ok()) << augment << nnls;
      EXPECT_NEAR(env.kernel.BudgetConsumed(), 0.4, 1e-9);
    }
  }
}

TEST(PlansTest, HdmmAdaptsToWorkload) {
  Rng rng(11);
  const std::size_t n = 128;
  Vec hist = MakeHistogram1D(Shape1D::kGaussianMix, n, 10000.0, &rng);
  Env env(hist, {n}, 0.2, 17, &rng);
  auto xhat = RunHdmmPlan(env.ctx, {MakePrefixOp(n)});
  ASSERT_TRUE(xhat.ok());
  EXPECT_NEAR(env.kernel.BudgetConsumed(), 0.2, 1e-9);
}

TEST(PlansTest, ModesAgreeStatistically) {
  // Same seed => identical kernel noise => (near-)identical estimates
  // across dense/sparse/implicit modes, because representations are
  // lossless.
  Rng rng(12);
  const std::size_t n = 64;
  Vec hist = MakeHistogram1D(Shape1D::kUniform, n, 3000.0, &rng);
  Vec results[3];
  int k = 0;
  for (MatrixMode mode :
       {MatrixMode::kDense, MatrixMode::kSparse, MatrixMode::kImplicit}) {
    Env env(hist, {n}, 0.5, 4242, &rng);
    env.ctx.mode = mode;
    auto xhat = RunH2Plan(env.ctx);
    ASSERT_TRUE(xhat.ok());
    results[k++] = *xhat;
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(results[0][i], results[1][i], 1e-6);
    EXPECT_NEAR(results[1][i], results[2][i], 1e-6);
  }
}

// ------------------------------------------------------------- 2D plans

TEST(PlansTest, QuadtreePlan2D) {
  Rng rng(13);
  Vec hist = MakeHistogram2D(16, 16, 20000.0, &rng);
  Env env(hist, {16, 16}, 0.3, 18, &rng);
  auto xhat = RunQuadtreePlan(env.ctx);
  ASSERT_TRUE(xhat.ok());
  EXPECT_NEAR(env.kernel.BudgetConsumed(), 0.3, 1e-9);
  EXPECT_LT(ScaledErr(*xhat, env.x_true), 0.01);
}

TEST(PlansTest, UniformGridPlan2D) {
  Rng rng(14);
  Vec hist = MakeHistogram2D(32, 32, 50000.0, &rng);
  Env env(hist, {32, 32}, 0.2, 19, &rng);
  auto xhat = RunUniformGridPlan(env.ctx);
  ASSERT_TRUE(xhat.ok());
  EXPECT_NEAR(env.kernel.BudgetConsumed(), 0.2, 1e-9);
}

TEST(PlansTest, AdaptiveGridPlan2DOnBudget) {
  Rng rng(15);
  Vec hist = MakeHistogram2D(32, 32, 100000.0, &rng);
  Env env(hist, {32, 32}, 0.2, 20, &rng);
  auto xhat = RunAdaptiveGridPlan(env.ctx);
  ASSERT_TRUE(xhat.ok());
  // Level-2 measurements run under parallel composition, so total spend
  // equals eps even though every block was measured.
  EXPECT_LE(env.kernel.BudgetConsumed(), 0.2 + 1e-9);
}

TEST(PlansTest, GridPlansRejectNon2D) {
  Rng rng(16);
  Vec hist(16, 1.0);
  Env env(hist, {16}, 1.0, 21, &rng);
  EXPECT_FALSE(RunQuadtreePlan(env.ctx).ok());
  EXPECT_FALSE(RunUniformGridPlan(env.ctx).ok());
}

// -------------------------------------------------------- striped plans

TEST(PlansTest, HbStripedMatchesDomainAndBudget) {
  Rng rng(17);
  // 3D domain: stripe along dim 0 (size 32), rest 4 x 3.
  const std::vector<std::size_t> dims = {32, 4, 3};
  Vec hist = MakeHistogram1D(Shape1D::kRoughUniform, 32 * 12, 30000.0, &rng);
  Env env(hist, dims, 0.3, 22, &rng);
  auto xhat = RunHbStripedPlan(env.ctx, 0);
  ASSERT_TRUE(xhat.ok());
  EXPECT_EQ(xhat->size(), hist.size());
  // Parallel composition: full eps per stripe, max = eps.
  EXPECT_NEAR(env.kernel.BudgetConsumed(), 0.3, 1e-9);
}

TEST(PlansTest, HbStripedKronEquivalentStructure) {
  Rng rng(18);
  const std::vector<std::size_t> dims = {16, 3, 2};
  Vec hist = MakeHistogram1D(Shape1D::kStep, 16 * 6, 20000.0, &rng);
  Env env(hist, dims, 0.3, 23, &rng);
  auto xhat = RunHbStripedKronPlan(env.ctx, 0);
  ASSERT_TRUE(xhat.ok());
  EXPECT_NEAR(env.kernel.BudgetConsumed(), 0.3, 1e-9);
  EXPECT_EQ(xhat->size(), hist.size());
}

TEST(PlansTest, DawaStripedRunsOnBudget) {
  Rng rng(19);
  const std::vector<std::size_t> dims = {64, 2, 2};
  Vec hist = MakeHistogram1D(Shape1D::kStep, 64 * 4, 40000.0, &rng);
  Env env(hist, dims, 0.2, 24, &rng);
  auto xhat = RunDawaStripedPlan(env.ctx, 0);
  ASSERT_TRUE(xhat.ok());
  EXPECT_NEAR(env.kernel.BudgetConsumed(), 0.2, 1e-9);
}

// ------------------------------------------------------------- Alg. 1

TEST(PlansTest, CdfEstimatorEndToEnd) {
  // Build the paper's table: schema [age, sex, salary]; estimate the CDF
  // of salary for males in their 30s.
  Rng rng(20);
  Table t(Schema({{"age", 100}, {"sex", 2}, {"salary", 64}}));
  // Target group: sex=1, age in [30,39], salaries concentrated mid-range.
  for (int i = 0; i < 4000; ++i) {
    uint32_t age = static_cast<uint32_t>(rng.UniformInt(0, 99));
    uint32_t sex = static_cast<uint32_t>(rng.UniformInt(0, 1));
    double s = rng.Normal(32.0, 8.0);
    uint32_t sal = static_cast<uint32_t>(std::clamp(s, 0.0, 63.0));
    t.AppendRow({age, sex, sal});
  }
  Vec true_hist =
      t.Where(Predicate::True()
                  .And("sex", CmpOp::kEq, 1)
                  .And("age", CmpOp::kGe, 30)
                  .And("age", CmpOp::kLe, 39))
          .Select({"salary"})
          .Vectorize();
  Vec true_cdf = MakePrefixOp(64)->Apply(true_hist);

  ProtectedKernel kernel(t, 2.0, 77);
  CdfPlanOptions opts;
  opts.filter = Predicate::True()
                    .And("sex", CmpOp::kEq, 1)
                    .And("age", CmpOp::kGe, 30)
                    .And("age", CmpOp::kLe, 39);
  opts.value_attr = "salary";
  opts.eps = 2.0;
  auto cdf = RunCdfEstimatorPlan(&kernel, opts);
  ASSERT_TRUE(cdf.ok());
  EXPECT_NEAR(kernel.BudgetConsumed(), 2.0, 1e-9);
  ASSERT_EQ(cdf->size(), 64u);
  // CDF is a prefix sum of non-negative estimates => non-decreasing.
  for (std::size_t i = 1; i < 64; ++i)
    EXPECT_GE((*cdf)[i], (*cdf)[i - 1] - 1e-9);
  // And reasonably close to the truth.
  EXPECT_LT(Rmse(*cdf, true_cdf) / std::max(true_cdf[63], 1.0), 0.2);
}

TEST(PlansTest, BudgetExhaustionStopsPlans) {
  Rng rng(21);
  Vec hist(32, 5.0);
  Env env(hist, {32}, 0.1, 25, &rng);
  ASSERT_TRUE(RunIdentityPlan(env.ctx).ok());
  auto denied = RunIdentityPlan(env.ctx);  // second run: no budget left
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kBudgetExhausted);
}

}  // namespace
}  // namespace ektelo
