// Randomized operator-tree fuzzing for the implicit-matrix engine.
//
// Builds random compositions of every LinOp kind (core implicit matrices,
// range/rectangle sets, dense/sparse leaves, Union, Product, Kronecker,
// RowWeight, Transpose) and checks that all five primitive methods plus
// sensitivity and materialization agree exactly with the materialized
// matrix — the "implicit representations are lossless" invariant of
// Sec. 7.2, exercised over hundreds of structures no hand-written test
// would cover.
#include <cmath>
#include <functional>

#include "gtest/gtest.h"
#include "linalg/haar.h"
#include "matrix/combinators.h"
#include "matrix/implicit_ops.h"
#include "matrix/range_ops.h"
#include "util/rng.h"

namespace ektelo {
namespace {

Vec RandomVec(std::size_t n, Rng* rng) {
  Vec v(n);
  for (auto& x : v) x = rng->Normal();
  return v;
}

CsrMatrix RandomSparse(std::size_t m, std::size_t n, Rng* rng) {
  std::vector<Triplet> t;
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (rng->Uniform() < 0.4) t.push_back({i, j, rng->Normal()});
  // Guarantee at least one entry so the op is not all-zero.
  t.push_back({0, 0, 1.0});
  return CsrMatrix::FromTriplets(m, n, std::move(t));
}

/// A random leaf operator with `n` columns.
LinOpPtr RandomLeaf(std::size_t n, Rng* rng) {
  switch (rng->UniformInt(0, 6)) {
    case 0:
      return MakeIdentityOp(n);
    case 1:
      return MakeTotalOp(n);
    case 2:
      return MakePrefixOp(n);
    case 3:
      return MakeSuffixOp(n);
    case 4: {
      std::vector<Interval> ranges;
      const std::size_t m = 1 + std::size_t(rng->UniformInt(0, 4));
      for (std::size_t q = 0; q < m; ++q) {
        std::size_t lo = std::size_t(rng->UniformInt(0, int64_t(n) - 1));
        std::size_t hi = std::size_t(rng->UniformInt(lo, int64_t(n) - 1));
        ranges.push_back({lo, hi});
      }
      return MakeRangeSetOp(std::move(ranges), n);
    }
    case 5:
      return MakeSparse(
          RandomSparse(1 + std::size_t(rng->UniformInt(0, 5)), n, rng));
    default:
      if (IsPowerOfTwo(n)) return MakeWaveletOp(n);
      return MakeOnesOp(2, n);
  }
}

/// A random operator tree of bounded depth over `n` columns.
LinOpPtr RandomTree(std::size_t n, std::size_t depth, Rng* rng) {
  if (depth == 0 || n <= 2) return RandomLeaf(n, rng);
  switch (rng->UniformInt(0, 7)) {
    case 0: {  // Union of 2-3 subtrees with equal column counts
      std::vector<LinOpPtr> kids;
      const int k = int(rng->UniformInt(2, 3));
      for (int i = 0; i < k; ++i)
        kids.push_back(RandomTree(n, depth - 1, rng));
      return MakeVStack(std::move(kids));
    }
    case 1: {  // Product: A (m x k) * B (k x n)
      LinOpPtr b = RandomTree(n, depth - 1, rng);
      LinOpPtr a = RandomLeaf(b->rows(), rng);
      return MakeProduct(std::move(a), std::move(b));
    }
    case 2: {  // Kronecker of two small factors if n factors nicely
      for (std::size_t fa : {2u, 3u, 4u}) {
        if (n % fa == 0 && n / fa >= 1) {
          LinOpPtr a = RandomTree(fa, depth - 1, rng);
          LinOpPtr b = RandomTree(n / fa, depth - 1, rng);
          return MakeKronecker(std::move(a), std::move(b));
        }
      }
      return RandomLeaf(n, rng);
    }
    case 3: {  // Row weights
      LinOpPtr child = RandomTree(n, depth - 1, rng);
      Vec w(child->rows());
      for (auto& x : w) x = rng->Normal();
      return MakeRowWeight(std::move(child), std::move(w));
    }
    case 4: {  // Horizontal stack: split the columns across 2 children
      if (n < 4) return RandomLeaf(n, rng);
      const std::size_t n1 = 1 + std::size_t(rng->UniformInt(1, int64_t(n) - 2));
      LinOpPtr a = RandomTree(n1, depth - 1, rng);
      LinOpPtr b = RandomTree(n - n1, depth - 1, rng);
      // Children must share a row count; equalize by stacking under a
      // fixed-row Ones on top (cheapest is to just retry with leaves).
      if (a->rows() != b->rows()) {
        a = MakeOnesOp(3, n1);
        b = MakeOnesOp(3, n - n1);
      }
      return MakeHStack({std::move(a), std::move(b)});
    }
    case 5: {  // Sum of 2 same-shape subtrees
      LinOpPtr a = RandomTree(n, depth - 1, rng);
      LinOpPtr b = RandomLeaf(n, rng);
      if (a->rows() != b->rows()) b = MakeIdentityOp(n);
      if (a->rows() != b->rows()) return a;
      return MakeSum({std::move(a), std::move(b)});
    }
    case 6: {  // Uniform scaling
      LinOpPtr child = RandomTree(n, depth - 1, rng);
      return MakeScaled(std::move(child), rng->Normal() * 2.0);
    }
    default:  // Transpose of a square-ish subtree: transpose twice to
              // keep the column count (transpose itself is exercised).
      return MakeTranspose(MakeTranspose(RandomTree(n, depth - 1, rng)));
  }
}

void CheckLossless(const LinOp& op, Rng* rng, double tol = 1e-8) {
  SCOPED_TRACE(op.DebugName());
  DenseMatrix d = op.MaterializeDense();
  ASSERT_EQ(d.rows(), op.rows());
  ASSERT_EQ(d.cols(), op.cols());

  Vec x = RandomVec(op.cols(), rng);
  Vec y1 = op.Apply(x);
  Vec y2 = d.Matvec(x);
  double ref = 1.0 + MaxAbs(y2);
  for (std::size_t i = 0; i < y1.size(); ++i)
    ASSERT_NEAR(y1[i], y2[i], tol * ref);

  Vec u = RandomVec(op.rows(), rng);
  Vec z1 = op.ApplyT(u);
  Vec z2 = d.RmatVec(u);
  ref = 1.0 + MaxAbs(z2);
  for (std::size_t j = 0; j < z1.size(); ++j)
    ASSERT_NEAR(z1[j], z2[j], tol * ref);

  EXPECT_NEAR(op.SensitivityL1(), d.MaxColNormL1(),
              tol * (1.0 + d.MaxColNormL1()));
  EXPECT_NEAR(op.SensitivityL2(), d.MaxColNormL2(),
              tol * (1.0 + d.MaxColNormL2()));
  // Sensitivity is cached per instance; repeated calls must return the
  // exact same value (not merely a re-derivation within tolerance).
  EXPECT_EQ(op.SensitivityL1(), op.SensitivityL1());
  EXPECT_EQ(op.SensitivityL2(), op.SensitivityL2());
  EXPECT_TRUE(op.Abs()->MaterializeDense().ApproxEquals(
      d.Abs(), tol * (1.0 + d.MaxColNormL1())));
  EXPECT_TRUE(op.Sqr()->MaterializeDense().ApproxEquals(
      d.Sqr(), tol * (1.0 + d.MaxColNormL1())));
  EXPECT_TRUE(op.MaterializeSparse().ToDense().ApproxEquals(d, tol * ref));

  // Blocked apply == column-by-column apply, both directions.
  const std::size_t kb = 1 + std::size_t(rng->UniformInt(1, 5));
  Block xb(op.cols(), kb);
  for (std::size_t c = 0; c < kb; ++c) xb.SetCol(c, RandomVec(op.cols(), rng));
  Block yb = op.ApplyBlock(xb);
  for (std::size_t c = 0; c < kb; ++c) {
    Vec want = op.Apply(xb.Col(c));
    Vec got = yb.Col(c);
    const double r = 1.0 + MaxAbs(want);
    for (std::size_t i = 0; i < want.size(); ++i)
      ASSERT_NEAR(got[i], want[i], tol * r) << "ApplyBlock col " << c;
  }
  Block ub(op.rows(), kb);
  for (std::size_t c = 0; c < kb; ++c) ub.SetCol(c, RandomVec(op.rows(), rng));
  Block zb = op.ApplyTBlock(ub);
  for (std::size_t c = 0; c < kb; ++c) {
    Vec want = op.ApplyT(ub.Col(c));
    Vec got = zb.Col(c);
    const double r = 1.0 + MaxAbs(want);
    for (std::size_t j = 0; j < want.size(); ++j)
      ASSERT_NEAR(got[j], want[j], tol * r) << "ApplyTBlock col " << c;
  }

  // Gram(): structured M^T M == densified M^T M, through both the operator
  // view and the sparse materialization used by GramSparse().
  DenseMatrix gram_want = d.Gram();
  const double gtol = tol * (1.0 + d.MaxColNormL2() * d.MaxColNormL2()) *
                      double(op.rows() + 1);
  LinOpPtr g = op.Gram();
  ASSERT_EQ(g->rows(), op.cols());
  ASSERT_EQ(g->cols(), op.cols());
  EXPECT_TRUE(g->MaterializeDense().ApproxEquals(gram_want, gtol))
      << "Gram() of " << op.DebugName() << " is " << g->DebugName();
  EXPECT_TRUE(GramSparse(op).ToDense().ApproxEquals(gram_want, gtol));
}

class MatrixFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(MatrixFuzzTest, RandomOperatorTreesAreLossless) {
  Rng rng(777 + GetParam());
  for (int iter = 0; iter < 25; ++iter) {
    const std::size_t n = std::size_t(rng.UniformInt(2, 16));
    const std::size_t depth = std::size_t(rng.UniformInt(1, 3));
    LinOpPtr op = RandomTree(n, depth, &rng);
    if (op->rows() == 0 || op->rows() > 512 || op->cols() > 512) continue;
    CheckLossless(*op, &rng);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixFuzzTest, ::testing::Range(0, 12));

TEST(MatrixFuzzTest, TransposeInvolution) {
  Rng rng(99);
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t n = std::size_t(rng.UniformInt(2, 12));
    LinOpPtr op = RandomTree(n, 2, &rng);
    if (op->rows() > 256) continue;
    LinOpPtr tt = MakeTranspose(MakeTranspose(op));
    EXPECT_TRUE(tt->MaterializeDense().ApproxEquals(
        op->MaterializeDense(), 1e-9));
    // (A^T)^T x == A x on a random probe.
    Vec x = RandomVec(n, &rng);
    Vec a = op->Apply(x);
    Vec b = tt->Apply(x);
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-9);
  }
}

TEST(MatrixFuzzTest, AdjointIdentityHolds) {
  // <A x, u> == <x, A^T u> for random trees and probes.
  Rng rng(101);
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t n = std::size_t(rng.UniformInt(2, 16));
    LinOpPtr op = RandomTree(n, 2, &rng);
    if (op->rows() > 512) continue;
    Vec x = RandomVec(op->cols(), &rng);
    Vec u = RandomVec(op->rows(), &rng);
    const double lhs = Dot(op->Apply(x), u);
    const double rhs = Dot(x, op->ApplyT(u));
    EXPECT_NEAR(lhs, rhs, 1e-6 * (1.0 + std::abs(lhs)));
  }
}

TEST(MatrixFuzzTest, UnionSensitivityIsSumOfParts) {
  // For stacked non-negative ops, column norms add.
  Rng rng(103);
  for (int iter = 0; iter < 20; ++iter) {
    const std::size_t n = std::size_t(rng.UniformInt(2, 20));
    auto a = MakeIdentityOp(n);
    auto b = MakePrefixOp(n);
    auto u = MakeVStack({a, b});
    EXPECT_NEAR(u->SensitivityL1(),
                a->SensitivityL1() + b->SensitivityL1(), 1e-9);
  }
}

}  // namespace
}  // namespace ektelo
