// Tests for CSV table import/export.
#include <cstdio>

#include "data/csv.h"
#include "gtest/gtest.h"

namespace ektelo {
namespace {

Schema S() { return Schema({{"a", 4}, {"b", 2}}); }

TEST(CsvTest, RoundTrip) {
  Table t(S());
  t.AppendRow({0, 1});
  t.AppendRow({3, 0});
  auto back = TableFromCsv(TableToCsv(t), S());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumRows(), 2u);
  EXPECT_EQ(back->At(1, 0), 3u);
  EXPECT_EQ(back->At(0, 1), 1u);
}

TEST(CsvTest, HeaderOrderInsensitive) {
  auto t = TableFromCsv("b,a\n1,2\n0,3\n", S());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->At(0, 0), 2u);  // a column
  EXPECT_EQ(t->At(0, 1), 1u);  // b column
}

TEST(CsvTest, WhitespaceAndBlankLinesTolerated) {
  auto t = TableFromCsv("a, b\n 1 , 0 \n\n2,1\n", S());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumRows(), 2u);
}

TEST(CsvTest, RejectsUnknownColumn) {
  auto t = TableFromCsv("a,zzz\n1,2\n", S());
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RejectsMissingColumn) {
  EXPECT_FALSE(TableFromCsv("a\n1\n", S()).ok());
}

TEST(CsvTest, RejectsDuplicateColumn) {
  EXPECT_FALSE(TableFromCsv("a,a\n1,2\n", S()).ok());
}

TEST(CsvTest, RejectsOutOfDomainCode) {
  auto t = TableFromCsv("a,b\n9,0\n", S());
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kOutOfRange);
}

TEST(CsvTest, RejectsNonNumericField) {
  EXPECT_FALSE(TableFromCsv("a,b\nx,0\n", S()).ok());
}

TEST(CsvTest, RejectsWrongFieldCount) {
  EXPECT_FALSE(TableFromCsv("a,b\n1,0,5\n", S()).ok());
}

TEST(CsvTest, EmptyInputRejected) {
  EXPECT_FALSE(TableFromCsv("", S()).ok());
}

TEST(CsvTest, RejectsNegativeCode) {
  // strtoul would silently wrap "-1" to ULONG_MAX; the parser must reject
  // signed input as a bad code, not an out-of-domain one.
  auto t = TableFromCsv("a,b\n-1,0\n", S());
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
  // Same on a domain so large the wrapped value could otherwise pass a
  // 32-bit domain check path.
  Schema wide({{"a", 4000000000u}, {"b", 2}});
  EXPECT_FALSE(TableFromCsv("a,b\n-1,0\n", wide).ok());
}

TEST(CsvTest, RejectsExplicitPlusSign) {
  EXPECT_FALSE(TableFromCsv("a,b\n+1,0\n", S()).ok());
}

TEST(CsvTest, QuotedHeaderWithEmbeddedComma) {
  Schema s({{"x,y", 4}, {"b", 2}});
  auto t = TableFromCsv("\"x,y\",b\n1,0\n3,1\n", s);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumRows(), 2u);
  EXPECT_EQ(t->At(1, 0), 3u);
}

TEST(CsvTest, QuotedHeaderWithEscapedQuote) {
  Schema s({{"he said \"hi\"", 4}, {"b", 2}});
  auto t = TableFromCsv("\"he said \"\"hi\"\"\",b\n2,1\n", s);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->At(0, 0), 2u);
}

TEST(CsvTest, QuotedDataFieldsParse) {
  auto t = TableFromCsv("a,b\n\"1\",\"0\"\n", S());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->At(0, 0), 1u);
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(TableFromCsv("a,b\n\"1,0\n", S()).ok());
}

TEST(CsvTest, RejectsGarbageAfterClosingQuote) {
  EXPECT_FALSE(TableFromCsv("a,b\n\"1\"x,0\n", S()).ok());
}

TEST(CsvTest, SpecialHeaderRoundTripsThroughTableToCsv) {
  // TableToCsv must quote header names containing commas/quotes so that
  // TableFromCsv reads back the exact schema columns.
  Schema s({{"income,total", 3}, {"say \"what\"", 2}});
  Table t(s);
  t.AppendRow({2, 1});
  t.AppendRow({0, 0});
  const std::string text = TableToCsv(t);
  auto back = TableFromCsv(text, s);
  ASSERT_TRUE(back.ok()) << back.status().ToString() << "\n" << text;
  EXPECT_EQ(back->NumRows(), 2u);
  EXPECT_EQ(back->At(0, 0), 2u);
  EXPECT_EQ(back->At(0, 1), 1u);
}

TEST(CsvTest, FileRoundTrip) {
  Table t(S());
  t.AppendRow({2, 1});
  const std::string path = "/tmp/ektelo_csv_test.csv";
  ASSERT_TRUE(SaveTableCsv(t, path).ok());
  auto back = LoadTableCsv(path, S());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumRows(), 1u);
  EXPECT_EQ(back->At(0, 0), 2u);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsNotFound) {
  auto t = LoadTableCsv("/nonexistent/nowhere.csv", S());
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ektelo
