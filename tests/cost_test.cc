// Analytic cost model (matrix/cost.h): the named guard constants that
// replaced the rewrite pass's magic numbers, their boundary behavior,
// and the sanity/monotonicity of the per-kind estimates the beam search
// ranks candidates by — including the composed-vs-materialize decision
// direction the search bench exercises end to end.
#include <cstring>

#include "gtest/gtest.h"
#include "matrix/combinators.h"
#include "matrix/cost.h"
#include "matrix/implicit_ops.h"
#include "matrix/range_ops.h"
#include "util/rng.h"

namespace ektelo {
namespace {

CsrMatrix RandomCsr(std::size_t m, std::size_t n, Rng* rng,
                    double density = 0.3) {
  std::vector<Triplet> t;
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (rng->Uniform() < density) t.push_back({i, j, rng->Normal()});
  return CsrMatrix::FromTriplets(m, n, std::move(t));
}

// ------------------------------------------------------------- guards

TEST(CostGuardsTest, SparseFuseBudgetBoundaries) {
  EXPECT_TRUE(SparseFuseWithinBudget(0));
  EXPECT_TRUE(SparseFuseWithinBudget(kSparseFuseMaxUpdates));
  EXPECT_FALSE(SparseFuseWithinBudget(kSparseFuseMaxUpdates + 1));
}

TEST(CostGuardsTest, SparseFuseDensityBoundaries) {
  // At ratio 1.0 the fused leaf may have exactly nnz(A)+nnz(B) entries.
  EXPECT_TRUE(SparseFuseKeepsDensity(200, 100, 100));
  EXPECT_FALSE(SparseFuseKeepsDensity(201, 100, 100));
  // The P P^T -> diagonal collapse: far fewer entries than the factors.
  EXPECT_TRUE(SparseFuseKeepsDensity(8, 64, 64));
  EXPECT_TRUE(SparseFuseKeepsDensity(0, 0, 0));
}

TEST(CostGuardsTest, GuardConstantsKeepTheirContractedValues) {
  // The rules-mode guards are part of the bitwise-reproducibility
  // contract: changing them changes which trees `rules` mode emits.
  EXPECT_EQ(kSparseFuseMaxUpdates, std::size_t{1} << 24);
  EXPECT_EQ(kSparseFuseMaxDensityRatio, 1.0);
  EXPECT_GE(kSearchBeamWidth, 2u);
  EXPECT_LE(kSearchMaterializeMaxUpdates, kSparseFuseMaxUpdates);
  EXPECT_GT(kSearchPruneRatio, 1.0);
  EXPECT_GT(kSearchImprovementRatio, 0.0);
  EXPECT_LT(kSearchImprovementRatio, 1.0);
  EXPECT_GT(kSearchMinApplySeconds, 0.0);
  EXPECT_LT(kSearchMinApplySeconds, 1e-3);
  EXPECT_GT(kRooflineFlopsPerSec, 0.0);
  EXPECT_GT(kRooflineBytesPerSec, 0.0);
}

// ----------------------------------------------------------- estimates

TEST(CostModelTest, DenseEstimateIsClosedForm) {
  const OpCost c = EstimateOpCost(*MakeDense(DenseMatrix(8, 16, 1.0)));
  EXPECT_DOUBLE_EQ(c.apply_flops, 2.0 * 8 * 16);
  EXPECT_GE(c.apply_bytes, 8.0 * 8 * 16);  // at least the matrix itself
  EXPECT_DOUBLE_EQ(c.footprint_bytes, 8.0 * 8 * 16);
}

TEST(CostModelTest, SparseEstimateTracksNnz) {
  Rng rng(5);
  CsrMatrix m = RandomCsr(16, 16, &rng, 0.25);
  const OpCost c = EstimateOpCost(*MakeSparse(m));
  EXPECT_DOUBLE_EQ(c.apply_flops, 2.0 * double(m.nnz()));
}

TEST(CostModelTest, ImplicitOpsBeatTheirDenseEquivalents) {
  // The whole point of EKTELO's implicit operators: the model must agree
  // that Prefix/Wavelet/RangeSet are far cheaper than dense n x n.
  const std::size_t n = 256;
  const double dense = TreeScore(*MakeDense(DenseMatrix(n, n, 0.5)));
  EXPECT_LT(TreeScore(*MakeIdentityOp(n)), dense);
  EXPECT_LT(TreeScore(*MakePrefixOp(n)), dense);
  EXPECT_LT(TreeScore(*MakeWaveletOp(n)), dense);
  std::vector<Interval> iv;
  for (std::size_t i = 0; i + 8 < n; i += 8) iv.push_back({i, i + 7});
  EXPECT_LT(TreeScore(*MakeRangeSetOp(std::move(iv), n)), dense);
}

TEST(CostModelTest, CombinatorsAreMonotoneInTheirChildren) {
  Rng rng(7);
  LinOpPtr a = MakeSparse(RandomCsr(12, 12, &rng));
  LinOpPtr b = MakeSparse(RandomCsr(12, 12, &rng));
  const OpCost ca = EstimateOpCost(*a);
  const OpCost cb = EstimateOpCost(*b);
  // A node costs at least the children it evaluates (the monotonicity
  // the search's pruning rule relies on).
  EXPECT_GE(EstimateOpCost(*MakeProduct(a, b)).apply_flops,
            ca.apply_flops + cb.apply_flops);
  EXPECT_GE(EstimateOpCost(*MakeVStack({a, b})).apply_flops,
            ca.apply_flops + cb.apply_flops);
  EXPECT_GE(EstimateOpCost(*MakeSum({a, b})).apply_flops,
            ca.apply_flops + cb.apply_flops);
  EXPECT_GE(EstimateOpCost(*MakeScaled(a, 2.0)).apply_flops, ca.apply_flops);
  EXPECT_DOUBLE_EQ(EstimateOpCost(*MakeTranspose(a)).apply_flops,
                   ca.apply_flops);
}

TEST(CostModelTest, KroneckerUsesTheVecTrickNotTheExpandedMatrix) {
  LinOpPtr a = MakeDense(DenseMatrix(16, 16, 1.0));
  LinOpPtr b = MakeDense(DenseMatrix(16, 16, 1.0));
  const double kron = EstimateOpCost(*MakeKronecker(a, b)).apply_flops;
  // Vec-trick: O(na*flops(B) + mb*flops(A)), nowhere near the (mn)^2
  // flops of the expanded 256 x 256 dense product.
  EXPECT_LT(kron, 2.0 * 256 * 256);
  EXPECT_GE(kron, 2.0 * 2 * 16 * 16);  // at least both factor applies
}

TEST(CostModelTest, UnknownSubclassScoresAsDense) {
  // An unmodeled LinOp must be scored conservatively (dense-equivalent),
  // never as free — the search would otherwise chase what it can't see.
  class MysteryOp final : public LinOp {
   public:
    MysteryOp() : LinOp(4, 4) {}
    void ApplyRaw(const double*, double*) const override {}
    void ApplyTRaw(const double*, double*) const override {}
    std::string DebugName() const override { return "Mystery"; }
  };
  MysteryOp op;
  const OpCost c = EstimateOpCost(op);
  EXPECT_DOUBLE_EQ(c.apply_flops,
                   EstimateOpCost(*MakeDense(DenseMatrix(4, 4))).apply_flops);
}

TEST(CostModelTest, ApplySecondsIsTheRooflineMax) {
  OpCost compute;  // compute-bound: flops dominate
  compute.apply_flops = kRooflineFlopsPerSec;
  compute.apply_bytes = 1.0;
  EXPECT_DOUBLE_EQ(ApplySeconds(compute), 1.0);
  OpCost memory;  // memory-bound: bytes dominate
  memory.apply_flops = 1.0;
  memory.apply_bytes = kRooflineBytesPerSec;
  EXPECT_DOUBLE_EQ(ApplySeconds(memory), 1.0);
}

TEST(CostModelTest, ComposedVsMaterializeDecisionDirection) {
  // The decision the search bench measures: a range workload composed
  // with a sparse grouping matrix vs the small fused CSR.  The model
  // must prefer the fused leaf per apply.
  const std::size_t n = 1024, g = n / 16;
  std::vector<Interval> iv;
  for (std::size_t i = 0; i + 256 < n; i += 16) iv.push_back({i, i + 255});
  LinOpPtr w = MakeRangeSetOp(std::move(iv), n);
  std::vector<Triplet> trips;
  for (std::size_t c = 0; c < n; ++c) trips.push_back({c, c / 16, 1.0});
  LinOpPtr s = MakeSparse(CsrMatrix::FromTriplets(n, g, std::move(trips)));
  LinOpPtr composed = MakeProduct(w, s);

  auto* wr = dynamic_cast<const RangeSetOp*>(w.get());
  ASSERT_NE(wr, nullptr);
  auto* sp = dynamic_cast<const SparseOp*>(s.get());
  ASSERT_NE(sp, nullptr);
  CsrMatrix fused = wr->MaterializeSparse().Matmul(sp->csr());
  LinOpPtr mat = MakeSparse(std::move(fused));
  EXPECT_LT(TreeScore(*mat), TreeScore(*composed));
  // ...and the improvement clears the search's replacement margin.
  EXPECT_LT(TreeScore(*mat), kSearchImprovementRatio * TreeScore(*composed));
  // The composed form scores above the min-search floor, so SearchRewrite
  // actually runs the beam on it rather than falling through to rules.
  EXPECT_GE(TreeScore(*composed), kSearchMinApplySeconds);
}

}  // namespace
}  // namespace ektelo
