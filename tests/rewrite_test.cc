// Unit tests for the algebraic rewrite engine: each rule is checked both
// structurally (the canonical form it must produce) and numerically
// (the rewritten operator represents the same matrix), plus coverage for
// StructuralHash/StructuralEq and the bounded OperatorCache.
#include <cmath>
#include <memory>

#include "gtest/gtest.h"
#include "matrix/combinators.h"
#include "matrix/implicit_ops.h"
#include "matrix/linop.h"
#include "matrix/partition.h"
#include "matrix/range_ops.h"
#include "matrix/rewrite.h"
#include "util/rng.h"

namespace ektelo {
namespace {

template <typename T>
std::shared_ptr<const T> As(const LinOpPtr& p) {
  return std::dynamic_pointer_cast<const T>(p);
}

Vec RandomVec(std::size_t n, Rng* rng) {
  Vec v(n);
  for (auto& x : v) x = rng->Normal();
  return v;
}

CsrMatrix RandomSparse(std::size_t m, std::size_t n, Rng* rng,
                       double density = 0.4) {
  std::vector<Triplet> t;
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (rng->Uniform() < density) t.push_back({i, j, rng->Normal()});
  return CsrMatrix::FromTriplets(m, n, std::move(t));
}

/// Rewritten and original must represent the same matrix: Apply and
/// ApplyT agree on random probes.
void CheckSameMatrix(const LinOpPtr& orig, const LinOpPtr& rewritten,
                     Rng* rng, double tol = 1e-10) {
  SCOPED_TRACE("orig=" + orig->DebugName() +
               " rewritten=" + rewritten->DebugName());
  ASSERT_EQ(rewritten->rows(), orig->rows());
  ASSERT_EQ(rewritten->cols(), orig->cols());
  for (int rep = 0; rep < 3; ++rep) {
    Vec x = RandomVec(orig->cols(), rng);
    Vec y0 = orig->Apply(x);
    Vec y1 = rewritten->Apply(x);
    for (std::size_t i = 0; i < y0.size(); ++i)
      ASSERT_NEAR(y0[i], y1[i], tol * std::max(1.0, std::abs(y0[i]))) << i;
    Vec u = RandomVec(orig->rows(), rng);
    Vec z0 = orig->ApplyT(u);
    Vec z1 = rewritten->ApplyT(u);
    for (std::size_t i = 0; i < z0.size(); ++i)
      ASSERT_NEAR(z0[i], z1[i], tol * std::max(1.0, std::abs(z0[i]))) << i;
  }
}

TEST(RewriteRuleTest, ScaleOfScaleCollapses) {
  Rng rng(1);
  auto base = MakePrefixOp(16);
  auto op = MakeScaled(MakeScaled(base, 2.0), 3.0);
  auto r = Rewrite(op);
  auto s = As<ScaleOp>(r);
  ASSERT_TRUE(s);
  EXPECT_DOUBLE_EQ(s->scale(), 6.0);
  EXPECT_FALSE(As<ScaleOp>(s->child()));
  CheckSameMatrix(op, r, &rng);
}

TEST(RewriteRuleTest, ScaleFoldsIntoLeaves) {
  Rng rng(2);
  auto sp = MakeSparse(RandomSparse(6, 8, &rng));
  auto r = Rewrite(MakeScaled(sp, 2.5));
  EXPECT_TRUE(As<SparseOp>(r));
  CheckSameMatrix(MakeScaled(sp, 2.5), r, &rng);

  DenseMatrix d(4, 5);
  for (auto& v : d.data()) v = rng.Normal();
  auto de = MakeDense(d);
  auto rd = Rewrite(MakeScaled(de, -1.5));
  EXPECT_TRUE(As<DenseOp>(rd));
  CheckSameMatrix(MakeScaled(de, -1.5), rd, &rng);
}

TEST(RewriteRuleTest, TransposePushesToLeaves) {
  Rng rng(3);
  // T(T(A)) = A, by pointer.
  auto a = MakePrefixOp(8);
  EXPECT_EQ(Rewrite(MakeTranspose(MakeTranspose(a))), a);

  // T(A B) = T(B) T(A).
  auto sp1 = MakeSparse(RandomSparse(5, 7, &rng));
  auto wav = MakeWaveletOp(8);
  auto prod = MakeProduct(sp1, MakeSparse(RandomSparse(7, 8, &rng)));
  auto tp = MakeTranspose(prod);
  auto rtp = Rewrite(tp);
  EXPECT_FALSE(As<TransposeOp>(rtp));  // fused into one sparse leaf
  CheckSameMatrix(tp, rtp, &rng);

  // T(A (x) B) = T(A) (x) T(B).
  auto kron = MakeKronecker(wav, MakePrefixOp(4));
  auto tk = MakeTranspose(kron);
  auto rtk = Rewrite(tk);
  auto k = As<KroneckerOp>(rtk);
  ASSERT_TRUE(k);
  CheckSameMatrix(tk, rtk, &rng);

  // T([A; B]) = [T(A) | T(B)].
  auto stack = MakeVStack({MakePrefixOp(6), MakeSuffixOp(6)});
  auto ts = MakeTranspose(stack);
  auto rts = Rewrite(ts);
  EXPECT_TRUE(As<HStackOp>(rts));
  CheckSameMatrix(ts, rts, &rng);

  // Gram is symmetric: T(Gram(A)) = Gram(A).
  auto g = a->Gram();
  EXPECT_EQ(Rewrite(MakeTranspose(g)), g);

  // T of a CSR leaf materializes the transposed leaf.
  auto sp = MakeSparse(RandomSparse(6, 9, &rng));
  auto rsp = Rewrite(MakeTranspose(sp));
  EXPECT_TRUE(As<SparseOp>(rsp));
  CheckSameMatrix(MakeTranspose(sp), rsp, &rng);
}

TEST(RewriteRuleTest, IdentityFactorsVanish) {
  Rng rng(4);
  auto a = MakePrefixOp(8);
  EXPECT_EQ(Rewrite(MakeProduct(MakeIdentityOp(8), a)), a);
  EXPECT_EQ(Rewrite(MakeProduct(a, MakeIdentityOp(8))), a);

  // Kron(I_1, A) = A, Kron(I_m, I_n) = I_mn.
  EXPECT_EQ(Rewrite(MakeKronecker(MakeIdentityOp(1), a)), a);
  auto kii = Rewrite(MakeKronecker(MakeIdentityOp(3), MakeIdentityOp(4)));
  auto id = As<IdentityOp>(kii);
  ASSERT_TRUE(id);
  EXPECT_EQ(id->rows(), 12u);
}

TEST(RewriteRuleTest, KroneckerMixedProductFuses) {
  Rng rng(5);
  auto a = MakeDense([&] {
    DenseMatrix m(3, 4);
    for (auto& v : m.data()) v = rng.Normal();
    return m;
  }());
  auto b = MakeDense([&] {
    DenseMatrix m(2, 5);
    for (auto& v : m.data()) v = rng.Normal();
    return m;
  }());
  auto c = MakeDense([&] {
    DenseMatrix m(4, 2);
    for (auto& v : m.data()) v = rng.Normal();
    return m;
  }());
  auto d = MakeDense([&] {
    DenseMatrix m(5, 3);
    for (auto& v : m.data()) v = rng.Normal();
    return m;
  }());
  auto op = MakeProduct(MakeKronecker(a, b), MakeKronecker(c, d));
  auto r = Rewrite(op);
  ASSERT_TRUE(As<KroneckerOp>(r));  // (AC) (x) (BD)
  EXPECT_FALSE(As<ProductOp>(r));
  CheckSameMatrix(op, r, &rng, 1e-9);
}

TEST(RewriteRuleTest, PartitionGramShortCircuitsToDiagonal) {
  // P P^T of a partition is diagonal with the group sizes: the sparse
  // product fuses (nnz p <= 2 nnz P) and Gram(T(P)) collapses.
  Partition p({0, 0, 1, 2, 2, 2, 1, 0}, 3);
  auto reduce = p.ReduceOp();  // 3 x 8 CSR
  auto ppt = MakeProduct(reduce, MakeTranspose(reduce));
  auto r = Rewrite(ppt);
  auto sp = As<SparseOp>(r);
  ASSERT_TRUE(sp);
  EXPECT_EQ(sp->csr().nnz(), 3u);  // diagonal
  auto sizes = p.GroupSizes();
  for (std::size_t g = 0; g < 3; ++g)
    EXPECT_DOUBLE_EQ(sp->csr().values()[g], double(sizes[g]));

  // The same collapse through Gram(): Gram(P^T) = P P^T.
  auto gram = Rewrite(MakeTranspose(reduce))->Gram();
  auto rg = Rewrite(gram);
  auto spg = As<SparseOp>(rg);
  ASSERT_TRUE(spg);
  EXPECT_EQ(spg->csr().nnz(), 3u);
}

TEST(RewriteRuleTest, RowWeightFusesIntoCsrLeaf) {
  Rng rng(6);
  auto sp = MakeSparse(RandomSparse(5, 7, &rng));
  Vec w = RandomVec(5, &rng);
  auto op = MakeRowWeight(sp, w);
  auto r = Rewrite(op);
  EXPECT_TRUE(As<SparseOp>(r));
  CheckSameMatrix(op, r, &rng);

  // RowWeight of RowWeight composes; all-ones weights vanish.
  auto base = MakePrefixOp(5);
  Vec w2 = RandomVec(5, &rng);
  auto nested = MakeRowWeight(MakeRowWeight(base, w), w2);
  auto rn = Rewrite(nested);
  auto rw = As<RowWeightOp>(rn);
  ASSERT_TRUE(rw);
  EXPECT_FALSE(As<RowWeightOp>(rw->child()));
  CheckSameMatrix(nested, rn, &rng);
  EXPECT_EQ(Rewrite(MakeRowWeight(base, Vec(5, 1.0))), base);
}

TEST(RewriteRuleTest, VStackFlattensAndMergesRangeSets) {
  Rng rng(7);
  const std::size_t n = 32;
  auto r1 = MakeRangeSetOp({{0, 5}, {3, 9}}, n);
  auto r2 = MakeRangeSetOp({{10, 31}}, n);
  auto r3 = MakeRangeSetOp({{2, 2}}, n);
  auto nested = MakeVStack({MakeVStack({r1, r2}), r3});
  auto r = Rewrite(nested);
  auto merged = As<RangeSetOp>(r);
  ASSERT_TRUE(merged);
  EXPECT_EQ(merged->ranges().size(), 4u);
  CheckSameMatrix(nested, r, &rng);

  // A Total row (Ones(1, n)) merges as the full interval.
  auto with_total = MakeVStack({r1, MakeTotalOp(n)});
  auto rt = Rewrite(with_total);
  auto mt = As<RangeSetOp>(rt);
  ASSERT_TRUE(mt);
  EXPECT_EQ(mt->ranges().size(), 3u);
  EXPECT_EQ(mt->ranges().back().lo, 0u);
  EXPECT_EQ(mt->ranges().back().hi, n - 1);
  CheckSameMatrix(with_total, rt, &rng);
}

TEST(RewriteRuleTest, VStackHoistsWeightsThenMerges) {
  Rng rng(8);
  const std::size_t n = 24;
  auto r1 = MakeRangeSetOp({{0, 5}, {6, 11}}, n);
  auto r2 = MakeRangeSetOp({{12, 23}}, n);
  // Equal scales hoist to one Scale over the merged RangeSet.
  auto equal = MakeVStack({MakeScaled(r1, 2.0), MakeScaled(r2, 2.0)});
  auto req = Rewrite(equal);
  CheckSameMatrix(equal, req, &rng);
  {
    bool merged_below = false;
    if (auto s = As<ScaleOp>(req)) merged_below = !!As<RangeSetOp>(s->child());
    if (auto rw = As<RowWeightOp>(req))
      merged_below = !!As<RangeSetOp>(rw->child());
    EXPECT_TRUE(merged_below) << req->DebugName();
  }
  // Unequal scales hoist to a RowWeight over the merged RangeSet.
  auto unequal = MakeVStack({MakeScaled(r1, 2.0), MakeScaled(r2, 5.0)});
  auto run = Rewrite(unequal);
  auto rw = As<RowWeightOp>(run);
  ASSERT_TRUE(rw);
  EXPECT_TRUE(As<RangeSetOp>(rw->child()));
  CheckSameMatrix(unequal, run, &rng);
}

TEST(RewriteRuleTest, VStackMergesCsrLeavesSinglePass) {
  Rng rng(9);
  auto s1 = MakeSparse(RandomSparse(4, 6, &rng));
  auto s2 = MakeSparse(RandomSparse(3, 6, &rng));
  auto s3 = MakeSparse(RandomSparse(5, 6, &rng));
  auto stack = MakeVStack({s1, s2, s3});
  auto r = Rewrite(stack);
  auto sp = As<SparseOp>(r);
  ASSERT_TRUE(sp);
  EXPECT_EQ(sp->csr().rows(), 12u);
  CheckSameMatrix(stack, r, &rng);
}

TEST(RewriteRuleTest, SumFlattensAndMergesLeaves) {
  Rng rng(10);
  auto s1 = MakeSparse(RandomSparse(5, 5, &rng));
  auto s2 = MakeSparse(RandomSparse(5, 5, &rng));
  auto lazy = MakePrefixOp(5)->Gram();
  auto nested = MakeSum({MakeSum({s1, lazy}), s2});
  auto r = Rewrite(nested);
  CheckSameMatrix(nested, r, &rng);
  auto sum = As<SumOp>(r);
  ASSERT_TRUE(sum);
  // The two CSR leaves folded into one; the lazy Gram survives.
  EXPECT_EQ(sum->children().size(), 2u);
}

TEST(RewriteRuleTest, GramReDerivesAfterChildRewrite) {
  Rng rng(11);
  const std::size_t n = 16;
  auto stack =
      MakeVStack({MakeRangeSetOp({{0, 3}}, n), MakeRangeSetOp({{4, 15}}, n)});
  // The lazy Gram of the unmerged stack re-derives over the merged child.
  LinOpPtr lazy = std::make_shared<GramOp>(stack);
  auto r = Rewrite(lazy);
  auto g = As<GramOp>(r);
  ASSERT_TRUE(g);
  EXPECT_TRUE(As<RangeSetOp>(g->child()));
  CheckSameMatrix(lazy, r, &rng);
}

TEST(RewriteRuleTest, NoOpRewriteReturnsOriginalPointer) {
  // Operators already canonical come back as the same instance, so
  // per-instance caches survive.
  auto rs = MakeRangeSetOp({{0, 3}, {2, 7}}, 16);
  EXPECT_EQ(Rewrite(rs), rs);
  auto k = MakeKronecker(MakePrefixOp(4), MakeWaveletOp(4));
  EXPECT_EQ(Rewrite(k), k);
  auto single = MakeScaled(MakeRangeSetOp({{0, 7}}, 16), 2.0);
  EXPECT_EQ(Rewrite(single), single);
}

TEST(RewriteToggleTest, MaybeRewriteFollowsToggle) {
  auto op = MakeScaled(MakeScaled(MakePrefixOp(8), 2.0), 3.0);
  SetRewriteEnabled(0);
  EXPECT_EQ(MaybeRewrite(op), op);
  SetRewriteEnabled(1);
  EXPECT_NE(MaybeRewrite(op), op);
  SetRewriteEnabled(-1);
}

TEST(StructuralIdentityTest, EqualConstructionHashesAndComparesEqual) {
  Rng rng(12);
  auto make = [&](uint64_t seed) {
    Rng r(seed);
    CsrMatrix m = RandomSparse(4, 6, &r);
    return MakeVStack(
        {MakeScaled(MakeRangeSetOp({{0, 2}, {1, 5}}, 6), 1.5),
         MakeSparse(std::move(m)),
         MakeKronecker(MakeIdentityOp(2), MakePrefixOp(3))});
  };
  auto a = make(77);
  auto b = make(77);
  EXPECT_NE(a.get(), b.get());
  EXPECT_TRUE(a->StructuralEq(*b));
  EXPECT_EQ(a->StructuralHash(), b->StructuralHash());

  auto c = make(78);  // different sparse payload
  EXPECT_FALSE(a->StructuralEq(*c));

  // Different shapes / kinds never compare equal.
  EXPECT_FALSE(MakePrefixOp(8)->StructuralEq(*MakeSuffixOp(8)));
  EXPECT_FALSE(MakePrefixOp(8)->StructuralEq(*MakePrefixOp(9)));
}

TEST(OperatorCacheTest, SensitivityIsSharedAcrossEqualInstances) {
  OperatorCache& cache = OperatorCache::Global();
  cache.Clear();
  SetRewriteEnabled(1);
  auto a = MakeRangeSetOp({{0, 9}, {5, 19}, {0, 19}}, 20);
  auto b = MakeRangeSetOp({{0, 9}, {5, 19}, {0, 19}}, 20);
  const auto before = cache.stats();
  const double sa = a->SensitivityL1();
  const double sb = b->SensitivityL1();
  EXPECT_EQ(sa, sb);  // bitwise: b must reuse a's cached value
  const auto after = cache.stats();
  EXPECT_GE(after.hits, before.hits + 1);
  SetRewriteEnabled(-1);
}

TEST(OperatorCacheTest, MaterializeSparseHitsOnStructuralMatch) {
  OperatorCache& cache = OperatorCache::Global();
  cache.Clear();
  auto a = MakeKronecker(MakePrefixOp(8), MakeWaveletOp(4));
  auto b = MakeKronecker(MakePrefixOp(8), MakeWaveletOp(4));
  auto m1 = cache.MaterializeSparse(a);
  const auto mid = cache.stats();
  auto m2 = cache.MaterializeSparse(b);
  const auto end = cache.stats();
  EXPECT_EQ(end.hits, mid.hits + 1);
  EXPECT_EQ(m1->nnz(), m2->nnz());
  EXPECT_EQ(m1.get(), m2.get());  // same snapshot
}

TEST(OperatorCacheTest, CapacityBoundEvictsLru) {
  OperatorCache cache;
  cache.SetCapacity(4, std::size_t{64} << 20);
  for (std::size_t i = 0; i < 10; ++i)
    cache.MaterializeSparse(MakePrefixOp(8 + i));
  const auto s = cache.stats();
  EXPECT_LE(s.entries, 4u);
  EXPECT_GE(s.evictions, 6u);

  // Byte bound: a panel of large dense grams cannot exceed the budget.
  OperatorCache small;
  small.SetCapacity(64, 2000);  // ~2 KB
  for (std::size_t i = 0; i < 6; ++i)
    small.MaterializeDense(MakePrefixOp(10 + i));  // ~800+ bytes each
  EXPECT_LE(small.stats().bytes, 2000u);
}

TEST(OperatorCacheTest, GramDenseMatchesUncached) {
  Rng rng(13);
  auto op = MakeScaled(MakeRangeSetOp({{0, 3}, {2, 9}, {5, 11}}, 12), 1.7);
  OperatorCache cache;
  auto cached = cache.GramDense(op);
  DenseMatrix direct = op->Gram()->MaterializeDense();
  ASSERT_EQ(cached->rows(), direct.rows());
  for (std::size_t i = 0; i < direct.data().size(); ++i)
    EXPECT_DOUBLE_EQ(cached->data()[i], direct.data()[i]);
  // Second call is a hit returning the same snapshot.
  auto again = cache.GramDense(op);
  EXPECT_EQ(cached.get(), again.get());
}

}  // namespace
}  // namespace ektelo
