// PlanRegistry catalog tests: every Fig. 2 catalog plan is registered,
// executable by name through Plan::Execute(ProtectedVector, BudgetScope),
// and — driven from the registry, not a hand-maintained list — produces
// output identical (same seed) to its legacy Run*Plan shim.
#include <functional>
#include <map>
#include <string>

#include "data/generators.h"
#include "gtest/gtest.h"
#include "plans/grid_plans.h"
#include "plans/plans.h"
#include "plans/registry.h"
#include "plans/striped_plans.h"
#include "workload/workloads.h"

namespace ektelo {
namespace {

struct Env {
  ProtectedKernel kernel;
  PlanContext ctx;

  Env(const Vec& hist, std::vector<std::size_t> dims, double eps,
      uint64_t seed, Rng* client_rng)
      : kernel(TableFromHistogram(hist, "v"), eps, seed) {
    auto x = kernel.TVectorize(kernel.root());
    EXPECT_TRUE(x.ok());
    ctx.kernel = &kernel;
    ctx.x = *x;
    ctx.dims = std::move(dims);
    ctx.eps = eps;
    ctx.rng = client_rng;
  }
};

TEST(RegistryTest, CatalogContainsAllFig2Plans) {
  auto& registry = PlanRegistry::Global();
  for (const char* name :
       {"Identity", "Privelet", "H2", "HB", "Greedy-H", "Uniform", "MWEM",
        "MWEM variant b", "MWEM variant c", "MWEM variant d", "AHP", "DAWA",
        "HDMM", "Workload", "WorkloadLS", "QuadTree", "UniformGrid",
        "AdaptiveGrid", "DAWA-Striped", "HB-Striped", "HB-Striped_kron"}) {
    const Plan* plan = registry.Find(name);
    ASSERT_NE(plan, nullptr) << name;
    EXPECT_EQ(plan->name(), name);
    EXPECT_FALSE(plan->signature().empty()) << name;
  }
  EXPECT_EQ(registry.Find("NoSuchPlan"), nullptr);
}

TEST(RegistryTest, DuplicateRegistrationRejected) {
  auto& registry = PlanRegistry::Global();
  Status st = registry.Register(MakeIdentityPlan());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(RegistryTest, EveryCatalogPlanMatchesItsLegacyShim) {
  Rng rng(42);
  const double eps = 0.5;

  // 1D environment.
  const std::size_t n = 256;
  Vec hist1d = MakeHistogram1D(Shape1D::kGaussianMix, n, 2e4, &rng);
  auto ranges = RandomRanges(60, n, 64, &rng);
  LinOpPtr w_op = RangeQueryOp(ranges, n);
  const double total = Sum(hist1d);

  // 2D environment.
  const std::size_t side = 16;
  Vec hist2d = MakeHistogram2D(side, side, 2e4, &rng);

  // Multi-dim (striped) environment.
  const std::vector<std::size_t> dims3 = {32, 4, 2};
  Vec hist3 = MakeHistogram1D(Shape1D::kStep, 32 * 8, 2e4, &rng);

  // The legacy shim for each catalog plan.  Every registered plan must
  // have an entry: a plan added without equivalence coverage fails below.
  using Shim = std::function<StatusOr<Vec>(const PlanContext&)>;
  const std::map<std::string, Shim> shims = {
      {"Identity", [](const PlanContext& c) { return RunIdentityPlan(c); }},
      {"Privelet", [](const PlanContext& c) { return RunPriveletPlan(c); }},
      {"H2", [](const PlanContext& c) { return RunH2Plan(c); }},
      {"HB", [](const PlanContext& c) { return RunHbPlan(c); }},
      {"Greedy-H",
       [&](const PlanContext& c) { return RunGreedyHPlan(c, ranges); }},
      {"Uniform", [](const PlanContext& c) { return RunUniformPlan(c); }},
      {"MWEM",
       [&](const PlanContext& c) {
         return RunMwemPlan(c, ranges, {.known_total = total});
       }},
      {"MWEM variant b",
       [&](const PlanContext& c) {
         return RunMwemPlan(c, ranges,
                            {.augment_h2 = true, .known_total = total});
       }},
      {"MWEM variant c",
       [&](const PlanContext& c) {
         return RunMwemPlan(c, ranges,
                            {.nnls_inference = true, .known_total = total});
       }},
      {"MWEM variant d",
       [&](const PlanContext& c) {
         return RunMwemPlan(c, ranges,
                            {.augment_h2 = true, .nnls_inference = true,
                             .known_total = total});
       }},
      {"AHP", [](const PlanContext& c) { return RunAhpPlan(c); }},
      {"DAWA",
       [&](const PlanContext& c) { return RunDawaPlan(c, ranges); }},
      {"HDMM",
       [&](const PlanContext& c) { return RunHdmmPlan(c, {w_op}); }},
      {"Workload",
       [&](const PlanContext& c) { return RunWorkloadPlan(c, w_op, false); }},
      {"WorkloadLS",
       [&](const PlanContext& c) { return RunWorkloadPlan(c, w_op, true); }},
      {"QuadTree", [](const PlanContext& c) { return RunQuadtreePlan(c); }},
      {"UniformGrid",
       [](const PlanContext& c) { return RunUniformGridPlan(c); }},
      {"AdaptiveGrid",
       [](const PlanContext& c) { return RunAdaptiveGridPlan(c); }},
      {"DAWA-Striped",
       [](const PlanContext& c) { return RunDawaStripedPlan(c, 0); }},
      {"HB-Striped",
       [](const PlanContext& c) { return RunHbStripedPlan(c, 0); }},
      {"HB-Striped_kron",
       [](const PlanContext& c) { return RunHbStripedKronPlan(c, 0); }},
  };

  uint64_t seed = 9000;
  for (const Plan* plan : PlanRegistry::Global().Catalog()) {
    SCOPED_TRACE(plan->name());
    ASSERT_TRUE(shims.count(plan->name()))
        << "registered plan has no equivalence shim: " << plan->name();
    const Vec* hist = &hist1d;
    std::vector<std::size_t> dims = {n};
    switch (plan->domain()) {
      case DomainKind::k1D:
        break;
      case DomainKind::k2D:
        hist = &hist2d;
        dims = {side, side};
        break;
      case DomainKind::kMultiDim:
        hist = &hist3;
        dims = dims3;
        break;
    }
    ++seed;

    // Registry route: typed handle + scope + PlanInput.
    Env env_new(*hist, dims, eps, seed, &rng);
    ProtectedVector x(&env_new.kernel, env_new.ctx.x);
    BudgetScope scope(eps);
    PlanInput in;
    in.dims = dims;
    in.rng = &rng;
    in.ranges = ranges;
    in.workload = w_op;
    in.workload_factors = {w_op};
    in.known_total = total;
    in.stripe_dim = 0;
    StatusOr<Vec> via_registry = plan->Execute(x, scope, in);
    ASSERT_TRUE(via_registry.ok()) << via_registry.status().ToString();

    // Legacy route: same kernel seed, the deprecated Run*Plan shim.
    Env env_old(*hist, dims, eps, seed, &rng);
    StatusOr<Vec> via_shim = shims.at(plan->name())(env_old.ctx);
    ASSERT_TRUE(via_shim.ok()) << via_shim.status().ToString();

    // Same seed => identical kernel noise => identical output, and both
    // routes spend identical budget.
    ASSERT_EQ(via_registry->size(), via_shim->size());
    for (std::size_t i = 0; i < via_registry->size(); ++i)
      ASSERT_DOUBLE_EQ((*via_registry)[i], (*via_shim)[i]) << i;
    EXPECT_DOUBLE_EQ(env_new.kernel.BudgetConsumed(),
                     env_old.kernel.BudgetConsumed());
    // All catalog plans spend at most eps; AdaptiveGrid may spend less
    // when sparse blocks skip their level-2 refinement.
    EXPECT_LE(env_new.kernel.BudgetConsumed(), eps + 1e-9);
    EXPECT_GT(env_new.kernel.BudgetConsumed(), 0.0);
  }
}

TEST(RegistryTest, ExecuteByNameRejectsShapeMismatch) {
  Rng rng(43);
  Vec hist(32, 2.0);
  Env env(hist, {32}, 1.0, 77, &rng);
  ProtectedVector x(&env.kernel, env.ctx.x);
  const Plan* quadtree = PlanRegistry::Global().Find("QuadTree");
  ASSERT_NE(quadtree, nullptr);
  BudgetScope scope(1.0);
  PlanInput in;
  in.dims = {32};  // 1D shape for a 2D plan
  EXPECT_FALSE(quadtree->Execute(x, scope, in).ok());
  // dims that do not multiply out to the vector size are rejected too.
  const Plan* identity = PlanRegistry::Global().Find("Identity");
  PlanInput bad;
  bad.dims = {16};
  EXPECT_FALSE(identity->Execute(x, scope, bad).ok());
  // And nothing was charged by the refused executions.
  EXPECT_DOUBLE_EQ(env.kernel.BudgetConsumed(), 0.0);
}

}  // namespace
}  // namespace ektelo
