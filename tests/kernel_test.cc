// Tests for the protected kernel: Algorithm 2 budget semantics (sequential
// composition, stability scaling, parallel composition across partitions,
// atomic refusal), automatic sensitivity calibration, and the statistical
// behaviour of the measurement operators.
#include <cmath>

#include "data/table.h"
#include "gtest/gtest.h"
#include "kernel/kernel.h"
#include "matrix/combinators.h"
#include "matrix/implicit_ops.h"
#include "matrix/partition.h"

namespace ektelo {
namespace {

Table UniformTable(std::size_t domain, std::size_t per_cell) {
  Table t(Schema({{"v", domain}}));
  for (std::size_t i = 0; i < domain; ++i)
    for (std::size_t c = 0; c < per_cell; ++c)
      t.AppendRow({static_cast<uint32_t>(i)});
  return t;
}

TEST(KernelTest, SequentialCompositionAddsBudget) {
  ProtectedKernel k(UniformTable(8, 2), 1.0, 1);
  auto x = k.TVectorize(k.root());
  ASSERT_TRUE(x.ok());
  ASSERT_TRUE(k.VectorLaplace(*x, *MakeIdentityOp(8), 0.3).ok());
  EXPECT_NEAR(k.BudgetConsumed(), 0.3, 1e-12);
  ASSERT_TRUE(k.VectorLaplace(*x, *MakeIdentityOp(8), 0.4).ok());
  EXPECT_NEAR(k.BudgetConsumed(), 0.7, 1e-12);
}

TEST(KernelTest, RefusesWhenBudgetExhausted) {
  ProtectedKernel k(UniformTable(4, 1), 0.5, 2);
  auto x = k.TVectorize(k.root());
  ASSERT_TRUE(k.VectorLaplace(*x, *MakeIdentityOp(4), 0.5).ok());
  auto denied = k.VectorLaplace(*x, *MakeIdentityOp(4), 0.1);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kBudgetExhausted);
  // Refusal is atomic: consumed budget unchanged.
  EXPECT_NEAR(k.BudgetConsumed(), 0.5, 1e-12);
}

TEST(KernelTest, ExactBudgetSpendIsAccepted) {
  // Spending eps_total in many pieces must not be rejected for FP error.
  ProtectedKernel k(UniformTable(4, 1), 1.0, 3);
  auto x = k.TVectorize(k.root());
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(k.VectorLaplace(*x, *MakeIdentityOp(4), 0.1).ok())
        << "piece " << i;
  EXPECT_FALSE(k.VectorLaplace(*x, *MakeIdentityOp(4), 0.01).ok());
}

TEST(KernelTest, StabilityScalesCharge) {
  // A 2-stable vector transform doubles the effective cost of downstream
  // measurements.
  ProtectedKernel k(UniformTable(4, 3), 1.0, 4);
  auto x = k.TVectorize(k.root());
  // M = 2x2 matrix [[1,1,0,0],[1,1,1,1]] has max L1 column norm 2.
  DenseMatrix m(2, 4);
  m.At(0, 0) = m.At(0, 1) = 1.0;
  m.At(1, 0) = m.At(1, 1) = m.At(1, 2) = m.At(1, 3) = 1.0;
  auto y = k.VTransform(*x, MakeDense(m));
  ASSERT_TRUE(y.ok());
  EXPECT_DOUBLE_EQ(k.SourceStability(*y), 2.0);
  ASSERT_TRUE(k.VectorLaplace(*y, *MakeIdentityOp(2), 0.2).ok());
  EXPECT_NEAR(k.BudgetConsumed(), 0.4, 1e-12);  // 2-stable x 0.2
}

TEST(KernelTest, GroupByIsTwoStable) {
  ProtectedKernel k(UniformTable(4, 3), 1.0, 5);
  auto g = k.TGroupBy(k.root(), {"v"});
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(k.NoisyCount(*g, 0.1).ok());
  EXPECT_NEAR(k.BudgetConsumed(), 0.2, 1e-12);
}

TEST(KernelTest, ParallelCompositionChargesMax) {
  // Measuring every child of a partition at eps costs eps, not k*eps.
  ProtectedKernel k(UniformTable(8, 2), 1.0, 6);
  auto x = k.TVectorize(k.root());
  Partition p = Partition::FromIntervals({0, 4}, 8);  // two halves
  auto children = k.VSplitByPartition(*x, p);
  ASSERT_TRUE(children.ok());
  ASSERT_EQ(children->size(), 2u);
  ASSERT_TRUE(
      k.VectorLaplace((*children)[0], *MakeIdentityOp(4), 0.3).ok());
  EXPECT_NEAR(k.BudgetConsumed(), 0.3, 1e-12);
  ASSERT_TRUE(
      k.VectorLaplace((*children)[1], *MakeIdentityOp(4), 0.3).ok());
  EXPECT_NEAR(k.BudgetConsumed(), 0.3, 1e-12);  // max, not sum
  // A second round on child 0 pushes the max up.
  ASSERT_TRUE(
      k.VectorLaplace((*children)[0], *MakeIdentityOp(4), 0.2).ok());
  EXPECT_NEAR(k.BudgetConsumed(), 0.5, 1e-12);
}

TEST(KernelTest, UnevenChildSpendingChargesMax) {
  ProtectedKernel k(UniformTable(9, 1), 1.0, 7);
  auto x = k.TVectorize(k.root());
  Partition p = Partition::FromIntervals({0, 3, 6}, 9);
  auto ch = k.VSplitByPartition(*x, p);
  ASSERT_TRUE(ch.ok());
  ASSERT_TRUE(k.VectorLaplace((*ch)[0], *MakeIdentityOp(3), 0.1).ok());
  ASSERT_TRUE(k.VectorLaplace((*ch)[1], *MakeIdentityOp(3), 0.4).ok());
  ASSERT_TRUE(k.VectorLaplace((*ch)[2], *MakeIdentityOp(3), 0.2).ok());
  EXPECT_NEAR(k.BudgetConsumed(), 0.4, 1e-12);
}

TEST(KernelTest, NestedSplitsComposeCorrectly) {
  ProtectedKernel k(UniformTable(8, 1), 1.0, 8);
  auto x = k.TVectorize(k.root());
  auto outer = k.VSplitByPartition(*x, Partition::FromIntervals({0, 4}, 8));
  ASSERT_TRUE(outer.ok());
  auto inner =
      k.VSplitByPartition((*outer)[0], Partition::FromIntervals({0, 2}, 4));
  ASSERT_TRUE(inner.ok());
  // eps on each inner child: max = 0.2 at outer child 0.
  ASSERT_TRUE(k.VectorLaplace((*inner)[0], *MakeIdentityOp(2), 0.2).ok());
  ASSERT_TRUE(k.VectorLaplace((*inner)[1], *MakeIdentityOp(2), 0.2).ok());
  EXPECT_NEAR(k.BudgetConsumed(), 0.2, 1e-12);
  // eps on outer child 1: still parallel with child 0's subtree.
  ASSERT_TRUE(k.VectorLaplace((*outer)[1], *MakeIdentityOp(4), 0.15).ok());
  EXPECT_NEAR(k.BudgetConsumed(), 0.2, 1e-12);
}

TEST(KernelTest, SplitChildrenHoldDisjointCells) {
  ProtectedKernel k(UniformTable(6, 1), 1.0, 9);
  auto x = k.TVectorize(k.root());
  Partition p({0, 1, 0, 1, 0, 1}, 2);
  auto ch = k.VSplitByPartition(*x, p);
  ASSERT_TRUE(ch.ok());
  EXPECT_EQ(k.VectorSize((*ch)[0]), 3u);
  EXPECT_EQ(k.VectorSize((*ch)[1]), 3u);
}

TEST(KernelTest, VectorLaplaceAutoSensitivity) {
  // Prefix has sensitivity n; the recorded noise scale must be n/eps.
  ProtectedKernel k(UniformTable(16, 1), 10.0, 10);
  auto x = k.TVectorize(k.root());
  ASSERT_TRUE(k.VectorLaplace(*x, *MakePrefixOp(16), 2.0).ok());
  ASSERT_EQ(k.transcript().size(), 1u);
  EXPECT_NEAR(k.transcript()[0].noise_scale, 16.0 / 2.0, 1e-12);
}

TEST(KernelTest, VectorLaplaceIsUnbiasedAndCalibrated) {
  // Identity measurements: empirical mean ~= truth, variance ~= 2(1/eps)^2.
  const double eps = 0.5;
  const std::size_t n = 16;
  const int trials = 3000;
  Vec mean(n, 0.0);
  double var_acc = 0.0;
  for (int t = 0; t < trials; ++t) {
    ProtectedKernel k(UniformTable(n, 5), 1.0, 1000 + t);
    auto x = k.TVectorize(k.root());
    auto y = k.VectorLaplace(*x, *MakeIdentityOp(n), eps);
    ASSERT_TRUE(y.ok());
    for (std::size_t i = 0; i < n; ++i) {
      mean[i] += (*y)[i];
      var_acc += ((*y)[i] - 5.0) * ((*y)[i] - 5.0);
    }
  }
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(mean[i] / trials, 5.0, 0.2);
  double var = var_acc / (trials * n);
  EXPECT_NEAR(var, 2.0 / (eps * eps), 0.5);
}

TEST(KernelTest, WhereThenMeasureChargesNormally) {
  // Where is 1-stable: filtering does not inflate cost (Algorithm 1's
  // pattern: Where -> Select -> Vectorize -> measure).
  Table t(Schema({{"sex", 2}, {"age", 10}, {"salary", 8}}));
  for (uint32_t i = 0; i < 40; ++i)
    t.AppendRow({i % 2, i % 10, i % 8});
  ProtectedKernel k(std::move(t), 1.0, 11);
  auto filtered = k.TWhere(
      k.root(), Predicate::True().And("sex", CmpOp::kEq, 1).And(
                    "age", CmpOp::kGe, 3));
  ASSERT_TRUE(filtered.ok());
  auto sel = k.TSelect(*filtered, {"salary"});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(k.SourceSchema(*sel).num_attrs(), 1u);
  auto x = k.TVectorize(*sel);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(k.VectorSize(*x), 8u);
  ASSERT_TRUE(k.VectorLaplace(*x, *MakeIdentityOp(8), 0.25).ok());
  EXPECT_NEAR(k.BudgetConsumed(), 0.25, 1e-12);
}

TEST(KernelTest, ReduceByPartitionIsOneStable) {
  ProtectedKernel k(UniformTable(8, 1), 1.0, 12);
  auto x = k.TVectorize(k.root());
  auto r = k.VReduceByPartition(*x, Partition::FromIntervals({0, 4}, 8));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(k.VectorSize(*r), 2u);
  ASSERT_TRUE(k.VectorLaplace(*r, *MakeIdentityOp(2), 0.3).ok());
  EXPECT_NEAR(k.BudgetConsumed(), 0.3, 1e-12);
}

TEST(KernelTest, ReducedVectorSumsGroups) {
  // Measure the reduced vector with huge eps and check the group sums.
  ProtectedKernel k(UniformTable(6, 2), 1e7, 13);
  auto x = k.TVectorize(k.root());
  auto r = k.VReduceByPartition(*x, Partition({0, 0, 0, 1, 1, 1}, 2));
  auto y = k.VectorLaplace(*r, *MakeIdentityOp(2), 1e6);
  ASSERT_TRUE(y.ok());
  EXPECT_NEAR((*y)[0], 6.0, 1e-3);
  EXPECT_NEAR((*y)[1], 6.0, 1e-3);
}

TEST(KernelTest, NoisyCountConcentratesAroundSize) {
  double acc = 0.0;
  const int trials = 500;
  for (int t = 0; t < trials; ++t) {
    ProtectedKernel k(UniformTable(4, 25), 1.0, 2000 + t);
    auto y = k.NoisyCount(k.root(), 1.0);
    ASSERT_TRUE(y.ok());
    acc += *y;
  }
  EXPECT_NEAR(acc / trials, 100.0, 1.0);
}

TEST(KernelTest, WorstApproxFindsWorstQueryAtHighEps) {
  // x has a spike at cell 3; xhat is flat zero; the worst approximated
  // identity query is cell 3.
  Table t(Schema({{"v", 8}}));
  for (int i = 0; i < 50; ++i) t.AppendRow({3});
  ProtectedKernel k(std::move(t), 200.0, 14);
  auto x = k.TVectorize(k.root());
  Vec xhat(8, 0.0);
  auto pick = k.WorstApprox(*x, *MakeIdentityOp(8), xhat, 100.0);
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(*pick, 3u);
}

TEST(KernelTest, MeasureOnWrongSourceKindFails) {
  ProtectedKernel k(UniformTable(4, 1), 1.0, 15);
  auto denied = k.VectorLaplace(k.root(), *MakeIdentityOp(4), 0.1);
  EXPECT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kInvalidArgument);
  auto x = k.TVectorize(k.root());
  EXPECT_FALSE(k.NoisyCount(*x, 0.1).ok());
}

TEST(KernelTest, ShapeMismatchRejected) {
  ProtectedKernel k(UniformTable(4, 1), 1.0, 16);
  auto x = k.TVectorize(k.root());
  EXPECT_FALSE(k.VectorLaplace(*x, *MakeIdentityOp(5), 0.1).ok());
  EXPECT_FALSE(
      k.VReduceByPartition(*x, Partition::Identity(5)).ok());
}

TEST(KernelTest, InvalidEpsRejectedWithoutCharge) {
  ProtectedKernel k(UniformTable(4, 1), 1.0, 17);
  auto x = k.TVectorize(k.root());
  EXPECT_FALSE(k.VectorLaplace(*x, *MakeIdentityOp(4), 0.0).ok());
  EXPECT_FALSE(k.VectorLaplace(*x, *MakeIdentityOp(4), -1.0).ok());
  EXPECT_DOUBLE_EQ(k.BudgetConsumed(), 0.0);
}

TEST(KernelTest, TranscriptRecordsOperations) {
  ProtectedKernel k(UniformTable(4, 1), 1.0, 18);
  auto x = k.TVectorize(k.root());
  ASSERT_TRUE(k.VectorLaplace(*x, *MakeIdentityOp(4), 0.5).ok());
  ASSERT_EQ(k.transcript().size(), 1u);
  EXPECT_EQ(k.transcript()[0].eps, 0.5);
  EXPECT_NE(k.transcript()[0].op.find("Identity"), std::string::npos);
}

}  // namespace
}  // namespace ektelo
