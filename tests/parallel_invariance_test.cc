// Thread-count invariance: every registered plan must produce
// bitwise-identical output — and an order-identical kernel transcript —
// whether it runs serially (EKTELO_THREADS=0 semantics), with one worker,
// or with four.  This is the acceptance bar of the deterministic parallel
// execution engine: per-source lineage-seeded noise streams plus
// output-sharded linalg kernels make the schedule unobservable.
#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "data/generators.h"
#include "gtest/gtest.h"
#include "plans/registry.h"
#include "util/thread_pool.h"
#include "workload/workloads.h"

namespace ektelo {
namespace {

struct RunResult {
  Vec xhat;
  bool ok = false;
  std::string error;
  double budget = 0.0;
  // Transcript rows normalized for parallel branches: concurrent branches
  // interleave entries (and concurrently derived SourceIds are
  // scheduling-dependent), so we compare the sorted multiset of
  // (op, eps, noise_scale).
  std::vector<std::tuple<std::string, double, double>> transcript;
};

RunResult RunPlanWithThreads(const Plan& plan, std::size_t threads) {
  ThreadPool::Global().Resize(threads);

  const double eps = 0.5;
  Rng rng(17);  // identical environment for every run
  Vec hist;
  std::vector<std::size_t> dims;
  switch (plan.domain()) {
    case DomainKind::k1D:
      dims = {64};
      hist = MakeHistogram1D(Shape1D::kStep, 64, 2000.0, &rng);
      break;
    case DomainKind::k2D:
      dims = {8, 8};
      hist = MakeHistogram2D(8, 8, 2000.0, &rng);
      break;
    case DomainKind::kMultiDim:
      dims = {16, 2, 2};
      hist = MakeHistogram1D(Shape1D::kStep, 64, 2000.0, &rng);
      break;
  }
  const std::size_t n = hist.size();
  auto ranges = RandomRanges(20, n, 16, &rng);
  auto w = RangeQueryOp(ranges, n);

  ProtectedKernel kernel(TableFromHistogram(hist, "v"), eps, 424242);
  ProtectedTable root = ProtectedTable::Root(&kernel);
  auto x = root.Vectorize();
  EK_CHECK(x.ok());
  BudgetScope scope(eps);
  Rng client_rng(99);
  PlanInput in;
  in.dims = dims;
  in.ranges = ranges;
  in.workload = w;
  in.workload_factors = {w};
  in.known_total = Sum(hist);
  in.rng = &client_rng;
  in.stripe_dim = 0;

  RunResult r;
  StatusOr<Vec> xhat = plan.Execute(*x, scope, in);
  r.ok = xhat.ok();
  if (!r.ok) {
    r.error = xhat.status().ToString();
    return r;
  }
  r.xhat = std::move(*xhat);
  r.budget = kernel.BudgetConsumed();
  for (const auto& e : kernel.transcript())
    r.transcript.emplace_back(e.op, e.eps, e.noise_scale);
  std::sort(r.transcript.begin(), r.transcript.end());
  return r;
}

TEST(ParallelInvarianceTest, EveryPlanIsBitwiseThreadCountInvariant) {
  const std::vector<const Plan*> catalog = PlanRegistry::Global().Catalog();
  ASSERT_FALSE(catalog.empty());
  for (const Plan* plan : catalog) {
    SCOPED_TRACE(plan->name());
    const RunResult serial = RunPlanWithThreads(*plan, 0);
    ASSERT_TRUE(serial.ok) << serial.error;
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      const RunResult parallel = RunPlanWithThreads(*plan, threads);
      ASSERT_TRUE(parallel.ok) << parallel.error;
      ASSERT_EQ(parallel.xhat.size(), serial.xhat.size());
      for (std::size_t i = 0; i < serial.xhat.size(); ++i) {
        // Bitwise: no tolerance.
        ASSERT_EQ(parallel.xhat[i], serial.xhat[i])
            << "component " << i << " differs";
      }
      EXPECT_EQ(parallel.budget, serial.budget);
      EXPECT_EQ(parallel.transcript, serial.transcript);
    }
  }
  ThreadPool::Global().Resize(ThreadPool::DefaultThreadCount());
}

// A second seed/geometry so the parallel branches of the grid/striped
// plans see uneven block sizes (partial blocks exercise the assembly
// renumbering).
TEST(ParallelInvarianceTest, StripedAndGridPlansOnUnevenDomains) {
  for (const char* name : {"HB-Striped", "DAWA-Striped", "AdaptiveGrid"}) {
    SCOPED_TRACE(name);
    const Plan& plan = PlanRegistry::Global().MustFind(name);
    const RunResult serial = RunPlanWithThreads(plan, 0);
    const RunResult parallel = RunPlanWithThreads(plan, 3);
    ASSERT_EQ(serial.ok, parallel.ok);
    if (!serial.ok) continue;
    ASSERT_EQ(parallel.xhat.size(), serial.xhat.size());
    for (std::size_t i = 0; i < serial.xhat.size(); ++i)
      ASSERT_EQ(parallel.xhat[i], serial.xhat[i]) << i;
    EXPECT_EQ(parallel.transcript, serial.transcript);
  }
  ThreadPool::Global().Resize(ThreadPool::DefaultThreadCount());
}

}  // namespace
}  // namespace ektelo
