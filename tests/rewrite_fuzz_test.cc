// Rewrite-correctness fuzz: random conforming LinOp trees (depth <= 5
// over dense / CSR / Haar / Kron / Scale / VStack / HStack / Sum /
// Product / RowWeight / Transpose / RangeSet leaves) must represent the
// same matrix after Rewrite() — Apply, ApplyT and Gram agree to 1e-12
// relative to the |A||x| error scale — and structurally equal inputs must
// rewrite to structurally equal outputs.
#include <cmath>
#include <memory>

#include "gtest/gtest.h"
#include "matrix/combinators.h"
#include "matrix/implicit_ops.h"
#include "matrix/linop.h"
#include "matrix/range_ops.h"
#include "matrix/rewrite.h"
#include "util/rng.h"

namespace ektelo {
namespace {

std::size_t PickTop(Rng* rng, std::size_t n) {
  return static_cast<std::size_t>(rng->UniformInt(0, int64_t(n) - 1));
}

Vec RandomVec(std::size_t n, Rng* rng) {
  Vec v(n);
  for (auto& x : v) x = rng->Normal();
  return v;
}

class TreeGen {
 public:
  explicit TreeGen(Rng* rng) : rng_(rng) {}

  /// Any operator, free shape.
  LinOpPtr Any(int depth) {
    if (depth <= 0) return Leaf(Dim(), Dim());
    switch (Pick(8)) {
      case 0: {  // Product: inner dims conform
        LinOpPtr a = Shaped(depth - 1, Dim(), Dim());
        LinOpPtr b = Shaped(depth - 1, a->cols(), Dim());
        return MakeProduct(a, b);
      }
      case 1: {  // Kronecker of two small factors
        LinOpPtr a = Shaped(depth - 1, SmallDim(), SmallDim());
        LinOpPtr b = Shaped(depth - 1, SmallDim(), SmallDim());
        return MakeKronecker(a, b);
      }
      case 2: {  // VStack: shared cols
        const std::size_t cols = Dim();
        std::vector<LinOpPtr> cs;
        const std::size_t k = 2 + Pick(2);
        for (std::size_t i = 0; i < k; ++i)
          cs.push_back(Shaped(depth - 1, Dim(), cols));
        return MakeVStack(std::move(cs));
      }
      case 3: {  // HStack: shared rows
        const std::size_t rows = Dim();
        std::vector<LinOpPtr> cs;
        const std::size_t k = 2 + Pick(2);
        for (std::size_t i = 0; i < k; ++i)
          cs.push_back(Shaped(depth - 1, rows, Dim()));
        return MakeHStack(std::move(cs));
      }
      case 4: {  // Sum: shared shape
        const std::size_t rows = Dim(), cols = Dim();
        std::vector<LinOpPtr> cs;
        const std::size_t k = 2 + Pick(2);
        for (std::size_t i = 0; i < k; ++i)
          cs.push_back(Shaped(depth - 1, rows, cols));
        return MakeSum(std::move(cs));
      }
      case 5:
        return MakeScaled(Any(depth - 1), ScaleValue());
      case 6: {
        LinOpPtr c = Any(depth - 1);
        return MakeRowWeight(c, RandomVec(c->rows(), rng_));
      }
      default:
        return MakeTranspose(Any(depth - 1));
    }
  }

  /// An operator with the requested shape (wrappers + leaves only, so any
  /// shape is realizable).
  LinOpPtr Shaped(int depth, std::size_t rows, std::size_t cols) {
    if (depth <= 0) return Leaf(rows, cols);
    switch (Pick(6)) {
      case 0:
        return MakeScaled(Shaped(depth - 1, rows, cols), ScaleValue());
      case 1:
        return MakeRowWeight(Shaped(depth - 1, rows, cols),
                             RandomVec(rows, rng_));
      case 2:
        return MakeTranspose(Shaped(depth - 1, cols, rows));
      case 3: {  // split rows across a VStack
        if (rows < 2) return Leaf(rows, cols);
        const std::size_t r1 = 1 + Pick(rows - 1);
        return MakeVStack({Shaped(depth - 1, r1, cols),
                           Shaped(depth - 1, rows - r1, cols)});
      }
      case 4: {  // product through a small inner dim
        const std::size_t k = 1 + Pick(6);
        return MakeProduct(Shaped(depth - 1, rows, k),
                           Shaped(depth - 1, k, cols));
      }
      default:
        return Leaf(rows, cols);
    }
  }

 private:
  /// Uniform in [0, n).
  std::size_t Pick(std::size_t n) {
    return static_cast<std::size_t>(rng_->UniformInt(0, int64_t(n) - 1));
  }
  std::size_t Dim() { return 1 + Pick(10); }
  std::size_t SmallDim() { return 1 + Pick(4); }
  double ScaleValue() { return rng_->Normal() + 0.25; }

  LinOpPtr Leaf(std::size_t rows, std::size_t cols) {
    switch (Pick(6)) {
      case 0: {  // dense
        DenseMatrix m(rows, cols);
        for (auto& v : m.data()) v = rng_->Normal();
        return MakeDense(std::move(m));
      }
      case 1: {  // sparse
        std::vector<Triplet> t;
        for (std::size_t i = 0; i < rows; ++i)
          for (std::size_t j = 0; j < cols; ++j)
            if (rng_->Uniform() < 0.4) t.push_back({i, j, rng_->Normal()});
        return MakeSparse(CsrMatrix::FromTriplets(rows, cols, std::move(t)));
      }
      case 2: {  // range set
        std::vector<Interval> ranges;
        for (std::size_t q = 0; q < rows; ++q) {
          std::size_t lo = Pick(cols);
          std::size_t hi = lo + Pick(cols - lo);
          ranges.push_back({lo, hi});
        }
        return MakeRangeSetOp(std::move(ranges), cols);
      }
      case 3:
        if (rows == cols) return MakeIdentityOp(rows);
        return MakeOnesOp(rows, cols);
      case 4:
        if (rows == cols && IsPowerOfTwoDim(rows)) return MakeWaveletOp(rows);
        return MakeOnesOp(rows, cols);
      default:
        if (rows == cols) return MakePrefixOp(rows);
        return MakeOnesOp(rows, cols);
    }
  }

  static bool IsPowerOfTwoDim(std::size_t n) {
    return n >= 1 && (n & (n - 1)) == 0;
  }

  Rng* rng_;
};

/// |A| |x|: the natural error scale of evaluating A x in floating point.
Vec AbsApply(const LinOp& op, const Vec& x) {
  Vec ax(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) ax[i] = std::abs(x[i]);
  return op.Abs()->Apply(ax);
}

Vec AbsApplyT(const LinOp& op, const Vec& x) {
  Vec ax(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) ax[i] = std::abs(x[i]);
  return op.Abs()->ApplyT(ax);
}

TEST(RewriteFuzzTest, RandomTreesAgreeAfterRewrite) {
  Rng rng(20240719);
  TreeGen gen(&rng);
  for (int trial = 0; trial < 300; ++trial) {
    SCOPED_TRACE(trial);
    LinOpPtr op = gen.Any(2 + PickTop(&rng, 4));  // depth 2..5
    LinOpPtr r = Rewrite(op);
    SCOPED_TRACE(op->DebugName() + " -> " + r->DebugName());
    ASSERT_EQ(r->rows(), op->rows());
    ASSERT_EQ(r->cols(), op->cols());

    Vec x = RandomVec(op->cols(), &rng);
    Vec y0 = op->Apply(x);
    Vec y1 = r->Apply(x);
    Vec yscale = AbsApply(*op, x);
    for (std::size_t i = 0; i < y0.size(); ++i)
      ASSERT_NEAR(y0[i], y1[i], 1e-12 * std::max(1.0, yscale[i])) << i;

    Vec u = RandomVec(op->rows(), &rng);
    Vec z0 = op->ApplyT(u);
    Vec z1 = r->ApplyT(u);
    Vec zscale = AbsApplyT(*op, u);
    for (std::size_t i = 0; i < z0.size(); ++i)
      ASSERT_NEAR(z0[i], z1[i], 1e-12 * std::max(1.0, zscale[i])) << i;

    // Gram agreement (G x = A^T (A x)): scale by |A^T||A||x|.
    Vec g0 = op->Gram()->Apply(x);
    Vec g1 = r->Gram()->Apply(x);
    Vec gscale = AbsApplyT(*op, AbsApply(*op, x));
    for (std::size_t i = 0; i < g0.size(); ++i)
      ASSERT_NEAR(g0[i], g1[i], 1e-12 * std::max(1.0, gscale[i])) << i;
  }
}

TEST(RewriteFuzzTest, StructurallyEqualTreesRewriteStructurallyEqual) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Rng r1(seed), r2(seed);
    TreeGen g1(&r1), g2(&r2);
    LinOpPtr a = g1.Any(4);
    LinOpPtr b = g2.Any(4);
    ASSERT_TRUE(a->StructuralEq(*b));
    ASSERT_EQ(a->StructuralHash(), b->StructuralHash());
    LinOpPtr ra = Rewrite(a);
    LinOpPtr rb = Rewrite(b);
    EXPECT_TRUE(ra->StructuralEq(*rb))
        << ra->DebugName() << " vs " << rb->DebugName();
    EXPECT_EQ(ra->StructuralHash(), rb->StructuralHash());
  }
}

}  // namespace
}  // namespace ektelo
