// Failpoint registry semantics + the crash-consistency torture matrix:
// every I/O operation of the deterministic workload gets a simulated
// kill, and the reopened ledger/store must uphold their invariants at
// every single crash point (see serve/torture.h).
#include <cerrno>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/ledger.h"
#include "serve/torture.h"
#include "store/artifact_store.h"
#include "util/failpoint.h"

namespace {

namespace fs = std::filesystem;
namespace fp = ektelo::failpoint;
using ektelo::serve::BudgetLedger;
using ektelo::serve::ChargeResult;
using ektelo::serve::LedgerOptions;
using ektelo::store::ArtifactKey;
using ektelo::store::DiskArtifactStore;
using ektelo::store::DiskStoreOptions;

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (fs::temp_directory_path() / ("ektelo_crash_matrix_" + name)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

#if EKTELO_FAILPOINTS_ENABLED

/// Every test leaves the process-global registry pristine.
struct RegistryGuard {
  RegistryGuard() { fp::Registry::Global().Reset(); }
  ~RegistryGuard() { fp::Registry::Global().Reset(); }
};

TEST(Failpoint, SpecParsingAndTriggerSchedules) {
  RegistryGuard guard;
  fp::Registry& reg = fp::Registry::Global();

  // Unparsable specs arm nothing.
  EXPECT_FALSE(reg.Arm("x", "explode"));
  EXPECT_FALSE(reg.Arm("x", "error.ebadcode"));
  EXPECT_FALSE(reg.Arm("x", "crash@"));
  EXPECT_FALSE(reg.Arm("x", "error@0"));

  // error every hit, default code EIO.
  ASSERT_TRUE(reg.Arm("a", "error"));
  fp::Action act = reg.Hit("a");
  EXPECT_EQ(act.kind, fp::ActionKind::kError);
  EXPECT_EQ(act.err, EIO);

  // @N: fires on exactly the Nth hit of that site.
  ASSERT_TRUE(reg.Arm("b", "error.enospc@2"));
  EXPECT_EQ(reg.Hit("b").kind, fp::ActionKind::kNone);
  act = reg.Hit("b");
  EXPECT_EQ(act.kind, fp::ActionKind::kError);
  EXPECT_EQ(act.err, ENOSPC);
  EXPECT_EQ(reg.Hit("b").kind, fp::ActionKind::kNone);

  // %N: fires on every Nth hit.
  ASSERT_TRUE(reg.Arm("c", "short%2"));
  EXPECT_EQ(reg.Hit("c").kind, fp::ActionKind::kNone);
  EXPECT_EQ(reg.Hit("c").kind, fp::ActionKind::kShortWrite);
  EXPECT_EQ(reg.Hit("c").kind, fp::ActionKind::kNone);
  EXPECT_EQ(reg.Hit("c").kind, fp::ActionKind::kShortWrite);

  // off disarms; ArmList handles the comma grammar.
  ASSERT_TRUE(reg.Arm("a", "off"));
  EXPECT_EQ(reg.Hit("a").kind, fp::ActionKind::kNone);
  ASSERT_TRUE(reg.ArmList("p=error.epipe,q=error@3"));
  EXPECT_EQ(reg.Hit("p").err, EPIPE);
  EXPECT_FALSE(reg.ArmList("p=error,broken"));
}

TEST(Failpoint, WildcardSchedulesAgainstGlobalHitCounter) {
  RegistryGuard guard;
  fp::Registry& reg = fp::Registry::Global();
  ASSERT_TRUE(reg.Arm("*", "error@3"));
  EXPECT_EQ(reg.Hit("one").kind, fp::ActionKind::kNone);
  EXPECT_EQ(reg.Hit("two").kind, fp::ActionKind::kNone);
  EXPECT_EQ(reg.Hit("three").kind, fp::ActionKind::kError);  // global hit 3
  EXPECT_EQ(reg.Hit("three").kind, fp::ActionKind::kNone);
}

TEST(Failpoint, TraceRecordsHitSequence) {
  RegistryGuard guard;
  fp::Registry& reg = fp::Registry::Global();
  reg.StartTrace();
  (void)reg.Hit("s1");
  (void)reg.Hit("s2");
  (void)reg.Hit("s1");
  const std::vector<std::string> trace = reg.StopTrace();
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0], "s1");
  EXPECT_EQ(trace[1], "s2");
  EXPECT_EQ(trace[2], "s1");
}

TEST(Failpoint, StoreDegradesStickilyOnInjectedWriteError) {
  RegistryGuard guard;
  const std::string dir = FreshDir("degrade");
  DiskStoreOptions opts;
  opts.hash_version = 3;
  opts.admission = 0;
  auto store = DiskArtifactStore::Open(dir, opts);
  ASSERT_NE(store, nullptr);

  const ArtifactKey key{0x1234, 1};
  const std::vector<uint8_t> payload(128, 0xAB);
  ASSERT_TRUE(store->Put(key, payload));

  // Device goes bad: the next append fails and trips degradation.
  ASSERT_TRUE(fp::Registry::Global().Arm("store.data.append", "error.eio"));
  EXPECT_FALSE(store->Put({0x5678, 1}, payload));
  DiskArtifactStore::Stats st = store->stats();
  EXPECT_TRUE(st.degraded);
  EXPECT_GE(st.io_errors, 1u);

  // Sticky: healing the device does not resurrect the tier mid-process
  // (a half-written log is not worth trusting), and Get refuses too.
  fp::Registry::Global().Reset();
  EXPECT_FALSE(store->Put({0x9ABC, 1}, payload));
  std::vector<uint8_t> got;
  EXPECT_FALSE(store->Get(key, &got));
  EXPECT_TRUE(store->stats().degraded);

  // A fresh open reads the pre-fault record back intact.
  store.reset();
  store = DiskArtifactStore::Open(dir, opts);
  ASSERT_NE(store, nullptr);
  EXPECT_FALSE(store->stats().degraded);
  EXPECT_TRUE(store->Get(key, &got));
  EXPECT_EQ(got, payload);
}

TEST(Failpoint, LedgerChargeFailsClosedOnInjectedAppendError) {
  RegistryGuard guard;
  const std::string dir = FreshDir("ledger_io");
  auto ledger = BudgetLedger::Open(dir, LedgerOptions{});
  ASSERT_NE(ledger, nullptr);
  ASSERT_TRUE(ledger->CreateTenant("t", 1.0));

  ASSERT_TRUE(fp::Registry::Global().Arm("ledger.append", "error.eio"));
  EXPECT_EQ(ledger->Charge("t", 0.25), ChargeResult::kIoError);
  // Nothing consumed: the in-memory balance must not move on kIoError.
  EXPECT_DOUBLE_EQ(ledger->Balance("t")->spent, 0.0);
  EXPECT_GE(ledger->stats().io_errors, 1u);

  fp::Registry::Global().Reset();
  EXPECT_EQ(ledger->Charge("t", 0.25), ChargeResult::kCharged);
  EXPECT_DOUBLE_EQ(ledger->Balance("t")->spent, 0.25);
  EXPECT_EQ(ledger->Charge("t", 2.0), ChargeResult::kRefused);
}

TEST(CrashMatrix, CleanWorkloadPassesVerification) {
  RegistryGuard guard;
  const std::string dir = FreshDir("clean");
  ASSERT_TRUE(ektelo::serve::torture::RunWorkload(dir));
  std::string why;
  EXPECT_TRUE(ektelo::serve::torture::VerifyAfterCrash(dir, &why)) << why;
  fs::remove_all(dir);
}

TEST(CrashMatrix, WorkloadTraceIsDeterministic) {
  RegistryGuard guard;
  fp::Registry& reg = fp::Registry::Global();
  const std::string dir = FreshDir("trace");

  reg.StartTrace();
  ASSERT_TRUE(ektelo::serve::torture::RunWorkload(dir));
  const std::vector<std::string> first = reg.StopTrace();
  reg.Reset();
  fs::remove_all(dir);
  fs::create_directories(dir);

  reg.StartTrace();
  ASSERT_TRUE(ektelo::serve::torture::RunWorkload(dir));
  const std::vector<std::string> second = reg.StopTrace();
  reg.Reset();
  fs::remove_all(dir);

  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// The acceptance test: a simulated kill at EVERY I/O operation of the
// workload, zero invariant violations, and coverage spanning both the
// ledger and the store subsystems.
TEST(CrashMatrix, EveryCrashPointUpholdsInvariants) {
  RegistryGuard guard;
  ektelo::serve::torture::CrashMatrixOptions opts;
  opts.dir = FreshDir("full");
  const ektelo::serve::torture::CrashMatrixResult res =
      ektelo::serve::torture::RunCrashMatrix(opts);

  for (const std::string& v : res.violations) ADD_FAILURE() << v;
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.crashes, res.total_ops);
  EXPECT_GT(res.total_ops, 20u);

  bool ledger_covered = false, store_covered = false;
  for (const std::string& s : res.sites_covered) {
    if (s.rfind("ledger.", 0) == 0) ledger_covered = true;
    if (s.rfind("store.", 0) == 0) store_covered = true;
  }
  EXPECT_TRUE(ledger_covered);
  EXPECT_TRUE(store_covered);
}

TEST(CrashMatrix, QuickPresetCoversEveryDistinctSite) {
  RegistryGuard guard;
  ektelo::serve::torture::CrashMatrixOptions opts;
  opts.dir = FreshDir("quick");
  opts.quick = true;
  const ektelo::serve::torture::CrashMatrixResult res =
      ektelo::serve::torture::RunCrashMatrix(opts);

  for (const std::string& v : res.violations) ADD_FAILURE() << v;
  EXPECT_TRUE(res.ok());
  // One crash per distinct site, and each covered exactly once.
  EXPECT_EQ(res.crashes, res.sites_covered.size());
  EXPECT_LT(res.crashes, res.total_ops);
}

#else  // !EKTELO_FAILPOINTS_ENABLED

TEST(CrashMatrix, ReportsWhyItCannotRunWhenCompiledOut) {
  ektelo::serve::torture::CrashMatrixOptions opts;
  opts.dir = FreshDir("disabled");
  const ektelo::serve::torture::CrashMatrixResult res =
      ektelo::serve::torture::RunCrashMatrix(opts);
  EXPECT_FALSE(res.ok());
  ASSERT_EQ(res.violations.size(), 1u);
}

#endif  // EKTELO_FAILPOINTS_ENABLED

}  // namespace
