// Warm-start equivalence: with a persistent disk tier attached, every
// registry plan must produce BITWISE identical outputs (and identical
// budgets/transcripts) on (a) the memory-only baseline, (b) a cold run
// populating a fresh store, and (c) a warm run in a "fresh process"
// (memory cache cleared, store reopened from disk) — across two store
// open/close cycles, as a serving deployment would see them.  The warm
// run must actually hit the disk tier.
//
// Also covers the Gram-memoization satellite: CG/NNLS derive their Gram
// (and NNLS its spectral-norm estimate) through the OperatorCache, so
// repeated solves of structurally identical stacks skip the per-solve
// re-derivation bitwise-invisibly.
#include <algorithm>
#include <atomic>
#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include "data/generators.h"
#include "gtest/gtest.h"
#include "matrix/cg.h"
#include "matrix/nnls.h"
#include "matrix/rewrite.h"
#include "plans/registry.h"
#include "store/artifact_store.h"
#include "workload/workloads.h"

namespace ektelo {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (fs::temp_directory_path() / ("ektelo_warmstart_" + name)).string();
  fs::remove_all(dir);
  return dir;
}

void AttachTier(const std::string& dir) {
  store::DiskStoreOptions opts;
  opts.hash_version = kHashVersion;
  auto tier = store::DiskArtifactStore::Open(dir, opts);
  ASSERT_TRUE(tier);
  OperatorCache::Global().SetDiskTier(std::move(tier));
}

void DetachTier() { OperatorCache::Global().SetDiskTier(nullptr); }

struct RunResult {
  Vec xhat;
  bool ok = false;
  std::string error;
  double budget = 0.0;
  std::vector<std::tuple<std::string, double, double>> transcript;
};

/// One deterministic end-to-end execution (same environment every call,
/// mirroring rewrite_equivalence_test).
RunResult RunPlan(const Plan& plan) {
  const double eps = 0.5;
  Rng rng(31);
  Vec hist;
  std::vector<std::size_t> dims;
  switch (plan.domain()) {
    case DomainKind::k1D:
      dims = {64};
      hist = MakeHistogram1D(Shape1D::kGaussianMix, 64, 2000.0, &rng);
      break;
    case DomainKind::k2D:
      dims = {8, 8};
      hist = MakeHistogram2D(8, 8, 2000.0, &rng);
      break;
    case DomainKind::kMultiDim:
      dims = {16, 2, 2};
      hist = MakeHistogram1D(Shape1D::kStep, 64, 2000.0, &rng);
      break;
  }
  const std::size_t n = hist.size();
  auto ranges = RandomRanges(20, n, 16, &rng);
  auto w = RangeQueryOp(ranges, n);

  ProtectedKernel kernel(TableFromHistogram(hist, "v"), eps, 515151);
  ProtectedTable root = ProtectedTable::Root(&kernel);
  auto x = root.Vectorize();
  EK_CHECK(x.ok());
  BudgetScope scope(eps);
  Rng client_rng(7);
  PlanInput in;
  in.dims = dims;
  in.ranges = ranges;
  in.workload = w;
  in.workload_factors = {w};
  in.known_total = Sum(hist);
  in.rng = &client_rng;
  in.stripe_dim = 0;

  RunResult r;
  StatusOr<Vec> xhat = plan.Execute(*x, scope, in);
  r.ok = xhat.ok();
  if (!r.ok) {
    r.error = xhat.status().ToString();
    return r;
  }
  r.xhat = std::move(*xhat);
  r.budget = kernel.BudgetConsumed();
  for (const auto& e : kernel.transcript())
    r.transcript.emplace_back(e.op, e.eps, e.noise_scale);
  std::sort(r.transcript.begin(), r.transcript.end());
  return r;
}

void ExpectBitwiseEqual(const RunResult& a, const RunResult& b,
                        const char* label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.ok, b.ok) << a.error << " / " << b.error;
  if (!a.ok) return;
  ASSERT_EQ(a.xhat.size(), b.xhat.size());
  for (std::size_t i = 0; i < a.xhat.size(); ++i)
    ASSERT_TRUE(BitwiseEq(a.xhat[i], b.xhat[i]))
        << "component " << i << ": " << a.xhat[i] << " vs " << b.xhat[i];
  EXPECT_EQ(a.budget, b.budget);
  EXPECT_EQ(a.transcript, b.transcript);
}

TEST(WarmStartTest, EveryPlanIsBitwiseIdenticalColdAndWarmAcrossTwoCycles) {
  const std::string dir = FreshDir("registry");
  const std::vector<const Plan*> catalog = PlanRegistry::Global().Catalog();
  ASSERT_FALSE(catalog.empty());

  // Baseline: memory-only, exactly the pre-store behavior.
  DetachTier();
  OperatorCache::Global().Clear();
  std::vector<RunResult> baseline;
  baseline.reserve(catalog.size());
  for (const Plan* plan : catalog) baseline.push_back(RunPlan(*plan));

  // Cycle 1 (cold): fresh store, empty memory cache — populates disk.
  AttachTier(dir);
  OperatorCache::Global().Clear();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const RunResult cold = RunPlan(*catalog[i]);
    ExpectBitwiseEqual(baseline[i], cold,
                       ("cold: " + catalog[i]->name()).c_str());
  }
  // Spills run on the write-behind consumer; barrier before counting.
  OperatorCache::Global().FlushDiskTier();
  const auto after_cold = OperatorCache::Global().stats();
  EXPECT_GT(after_cold.disk_writes, 0u);
  DetachTier();  // close cycle 1: flush + release the store

  // Cycle 2 (warm): reopen the same directory in a "fresh process" —
  // empty memory tier, artifacts come off disk.
  AttachTier(dir);
  OperatorCache::Global().Clear();
  const auto before_warm = OperatorCache::Global().stats();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const RunResult warm = RunPlan(*catalog[i]);
    ExpectBitwiseEqual(baseline[i], warm,
                       ("warm: " + catalog[i]->name()).c_str());
  }
  const auto after_warm = OperatorCache::Global().stats();
  EXPECT_GT(after_warm.disk_hits, before_warm.disk_hits)
      << "warm cycle never hit the disk tier";
  DetachTier();
  OperatorCache::Global().Clear();
  fs::remove_all(dir);
}

// ---------------------------------------------------- Gram memoization

/// Wraps a sparse matrix and counts Gram() derivations.  As an unknown
/// LinOp subclass it hashes per-instance, so cache hits only occur for
/// the *same* shared instance — which is exactly the repeated-solve
/// pattern the satellite targets.
class CountingGramOp final : public LinOp {
 public:
  explicit CountingGramOp(CsrMatrix m)
      : LinOp(m.rows(), m.cols()), m_(std::move(m)) {}
  void ApplyRaw(const double* x, double* y) const override {
    m_.Matvec(x, y);
  }
  void ApplyTRaw(const double* x, double* y) const override {
    m_.RmatVec(x, y);
  }
  LinOpPtr Gram() const override {
    ++gram_calls;
    return MakeSparse(m_.Transpose().Matmul(m_));
  }
  std::string DebugName() const override { return "CountingGram"; }
  mutable std::atomic<int> gram_calls{0};

 private:
  CsrMatrix m_;
};

CsrMatrix TestMatrix(std::size_t m, std::size_t n) {
  Rng rng(99);
  std::vector<Triplet> t;
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (rng.Uniform() < 0.4) t.push_back({i, j, rng.Normal() + 2.0});
  return CsrMatrix::FromTriplets(m, n, std::move(t));
}

TEST(GramMemoTest, NnlsDerivesTheGramOncePerStructure) {
  OperatorCache::Global().Clear();
  SetRewriteEnabled(1);
  auto op = std::make_shared<CountingGramOp>(TestMatrix(24, 10));
  Vec b(24);
  Rng rng(5);
  for (auto& v : b) v = rng.Normal() + 1.0;

  NnlsResult first = Nnls(*op, b);
  EXPECT_EQ(op->gram_calls.load(), 1);
  NnlsResult second = Nnls(*op, b);
  // Second solve: Gram and Lipschitz estimate both come from the cache.
  EXPECT_EQ(op->gram_calls.load(), 1);
  ASSERT_EQ(first.x.size(), second.x.size());
  for (std::size_t i = 0; i < first.x.size(); ++i)
    EXPECT_TRUE(BitwiseEq(first.x[i], second.x[i])) << i;

  // The cached path must be bitwise-identical to the uncached one.
  SetRewriteEnabled(0);
  auto fresh = std::make_shared<CountingGramOp>(TestMatrix(24, 10));
  NnlsResult uncached = Nnls(*fresh, b);
  SetRewriteEnabled(-1);
  EXPECT_EQ(uncached.iterations, first.iterations);
  for (std::size_t i = 0; i < first.x.size(); ++i)
    EXPECT_TRUE(BitwiseEq(first.x[i], uncached.x[i])) << i;
  OperatorCache::Global().Clear();
}

TEST(GramMemoTest, CgLeastSquaresReusesTheCachedGram) {
  OperatorCache::Global().Clear();
  SetRewriteEnabled(1);
  auto op = std::make_shared<CountingGramOp>(TestMatrix(20, 8));
  Vec b(20);
  Rng rng(6);
  for (auto& v : b) v = rng.Normal();

  CgResult first = CgLeastSquares(*op, b);
  EXPECT_EQ(op->gram_calls.load(), 1);
  CgResult second = CgLeastSquares(*op, b);
  EXPECT_EQ(op->gram_calls.load(), 1);

  SetRewriteEnabled(0);
  CgResult uncached = CgLeastSquares(*op, b);
  SetRewriteEnabled(-1);
  ASSERT_EQ(first.x.size(), uncached.x.size());
  for (std::size_t i = 0; i < first.x.size(); ++i) {
    EXPECT_TRUE(BitwiseEq(first.x[i], second.x[i])) << i;
    EXPECT_TRUE(BitwiseEq(first.x[i], uncached.x[i])) << i;
  }
  OperatorCache::Global().Clear();
}

TEST(GramMemoTest, StackAllocatedOperatorsStayUncachedButCorrect) {
  // No shared ownership -> no safe cache key; the solver must fall back
  // to per-solve derivation without touching the cache.
  OperatorCache::Global().Clear();
  CountingGramOp op(TestMatrix(16, 6));
  Vec b(16, 1.0);
  NnlsResult r1 = Nnls(op, b);
  NnlsResult r2 = Nnls(op, b);
  EXPECT_EQ(op.gram_calls.load(), 2);
  for (std::size_t i = 0; i < r1.x.size(); ++i)
    EXPECT_TRUE(BitwiseEq(r1.x[i], r2.x[i])) << i;
}

}  // namespace
}  // namespace ektelo
