// Deeper adversarial tests of the budget tracker (Algorithm 2): the cases
// a privacy auditor would probe — interleaved queries above and below
// partition boundaries, refusals mid-plan, stability through split
// children, and reduce/split chains.
#include "data/table.h"
#include "gtest/gtest.h"
#include "kernel/kernel.h"
#include "matrix/combinators.h"
#include "matrix/implicit_ops.h"
#include "matrix/partition.h"

namespace ektelo {
namespace {

Table UniformTable(std::size_t domain, std::size_t per_cell) {
  Table t(Schema({{"v", domain}}));
  for (std::size_t i = 0; i < domain; ++i)
    for (std::size_t c = 0; c < per_cell; ++c)
      t.AppendRow({static_cast<uint32_t>(i)});
  return t;
}

TEST(KernelPrivacyTest, QueryOnParentAfterSplitIsSequential) {
  // Measuring the split source itself composes sequentially with the
  // children's parallel max: parent eps + max(children eps).
  ProtectedKernel k(UniformTable(8, 1), 1.0, 1);
  auto x = k.TVectorize(k.root());
  auto ch = k.VSplitByPartition(*x, Partition::FromIntervals({0, 4}, 8));
  ASSERT_TRUE(ch.ok());
  ASSERT_TRUE(k.VectorLaplace((*ch)[0], *MakeIdentityOp(4), 0.2).ok());
  ASSERT_TRUE(k.VectorLaplace(*x, *MakeIdentityOp(8), 0.3).ok());
  // 0.2 (max over children) + 0.3 (direct on parent).
  EXPECT_NEAR(k.BudgetConsumed(), 0.5, 1e-12);
}

TEST(KernelPrivacyTest, InterleavedChildQueriesKeepMaxSemantics) {
  // Alternate between children; only the running max is charged.
  ProtectedKernel k(UniformTable(8, 1), 1.0, 2);
  auto x = k.TVectorize(k.root());
  auto ch = k.VSplitByPartition(*x, Partition::FromIntervals({0, 4}, 8));
  ASSERT_TRUE(ch.ok());
  const double steps[][2] = {{0, 0.1}, {1, 0.3}, {0, 0.1}, {1, 0.1},
                             {0, 0.3}};
  const double expected[] = {0.1, 0.3, 0.3, 0.4, 0.5};
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(k.VectorLaplace((*ch)[std::size_t(steps[i][0])],
                                *MakeIdentityOp(4), steps[i][1])
                    .ok());
    EXPECT_NEAR(k.BudgetConsumed(), expected[i], 1e-12) << "step " << i;
  }
}

TEST(KernelPrivacyTest, RefusalLeavesPartitionStateConsistent) {
  ProtectedKernel k(UniformTable(8, 1), 0.5, 3);
  auto x = k.TVectorize(k.root());
  auto ch = k.VSplitByPartition(*x, Partition::FromIntervals({0, 4}, 8));
  ASSERT_TRUE(k.VectorLaplace((*ch)[0], *MakeIdentityOp(4), 0.4).ok());
  // Child 1 asking 0.2 only costs max-increase... 0.4 -> still 0.4, OK.
  ASSERT_TRUE(k.VectorLaplace((*ch)[1], *MakeIdentityOp(4), 0.2).ok());
  EXPECT_NEAR(k.BudgetConsumed(), 0.4, 1e-12);
  // Child 1 asking 0.4 more would push its total to 0.6 > 0.5: refused.
  auto denied = k.VectorLaplace((*ch)[1], *MakeIdentityOp(4), 0.4);
  ASSERT_FALSE(denied.ok());
  EXPECT_NEAR(k.BudgetConsumed(), 0.4, 1e-12);
  // But 0.1 more still fits (child 1 reaches 0.3; max stays 0.4... then
  // child 1 at 0.3 < 0.4, so no extra root charge at all).
  ASSERT_TRUE(k.VectorLaplace((*ch)[1], *MakeIdentityOp(4), 0.1).ok());
  EXPECT_NEAR(k.BudgetConsumed(), 0.4, 1e-12);
}

TEST(KernelPrivacyTest, StabilityAppliesBelowSplit) {
  // A 2-stable transform on a split child doubles that child's charges.
  ProtectedKernel k(UniformTable(8, 1), 1.0, 4);
  auto x = k.TVectorize(k.root());
  auto ch = k.VSplitByPartition(*x, Partition::FromIntervals({0, 4}, 8));
  DenseMatrix m(1, 4);
  m.At(0, 0) = 2.0;  // max column norm 2
  auto t = k.VTransform((*ch)[0], MakeDense(m));
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(k.VectorLaplace(*t, *MakeIdentityOp(1), 0.1).ok());
  // Child 0 is charged 0.2; partition max(0.2, 0) = 0.2 at the root.
  EXPECT_NEAR(k.BudgetConsumed(), 0.2, 1e-12);
  // Sibling can still use 0.2 "for free" under the max.
  ASSERT_TRUE(k.VectorLaplace((*ch)[1], *MakeIdentityOp(4), 0.2).ok());
  EXPECT_NEAR(k.BudgetConsumed(), 0.2, 1e-12);
}

TEST(KernelPrivacyTest, ReduceThenSplitChains) {
  ProtectedKernel k(UniformTable(16, 1), 1.0, 5);
  auto x = k.TVectorize(k.root());
  auto r = k.VReduceByPartition(*x, Partition::FromIntervals({0, 8}, 16));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(k.VectorSize(*r), 2u);
  auto ch = k.VSplitByPartition(*r, Partition::FromIntervals({0, 1}, 2));
  ASSERT_TRUE(ch.ok());
  ASSERT_TRUE(k.VectorLaplace((*ch)[0], *MakeIdentityOp(1), 0.3).ok());
  ASSERT_TRUE(k.VectorLaplace((*ch)[1], *MakeIdentityOp(1), 0.3).ok());
  EXPECT_NEAR(k.BudgetConsumed(), 0.3, 1e-12);
}

TEST(KernelPrivacyTest, SensitivityZeroQueryStillCharges) {
  // An all-zero measurement matrix reveals nothing, but the request is
  // still metered (conservative; refusing to special-case avoids a
  // covert channel through the budget counter).
  ProtectedKernel k(UniformTable(4, 1), 1.0, 6);
  auto x = k.TVectorize(k.root());
  DenseMatrix zero(2, 4);
  auto y = k.VectorLaplace(*x, DenseOp(zero), 0.25);
  ASSERT_TRUE(y.ok());
  EXPECT_NEAR(k.BudgetConsumed(), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ((*y)[0], 0.0);
}

TEST(KernelPrivacyTest, HighSensitivityQueryChargesOnlyEps) {
  // Sensitivity scales the noise, not the budget: Prefix (sens n) at eps
  // costs eps and returns appropriately noisier answers.
  ProtectedKernel k(UniformTable(32, 2), 1.0, 7);
  auto x = k.TVectorize(k.root());
  ASSERT_TRUE(k.VectorLaplace(*x, *MakePrefixOp(32), 0.5).ok());
  EXPECT_NEAR(k.BudgetConsumed(), 0.5, 1e-12);
  EXPECT_NEAR(k.transcript()[0].noise_scale, 32.0 / 0.5, 1e-12);
}

TEST(KernelPrivacyTest, ExpMechChargesAndReturnsValidIndex) {
  ProtectedKernel k(UniformTable(8, 3), 1.0, 8);
  auto x = k.TVectorize(k.root());
  std::vector<std::function<double(const Vec&)>> scorers;
  for (int i = 0; i < 5; ++i)
    scorers.push_back([i](const Vec& v) { return v[i]; });
  auto pick = k.ChooseByVectorScores(*x, scorers, 0.3, 1.0);
  ASSERT_TRUE(pick.ok());
  EXPECT_LT(*pick, 5u);
  EXPECT_NEAR(k.BudgetConsumed(), 0.3, 1e-12);
}

TEST(KernelPrivacyTest, WorstApproxRefusedWhenBroke) {
  ProtectedKernel k(UniformTable(8, 1), 0.1, 9);
  auto x = k.TVectorize(k.root());
  ASSERT_TRUE(k.VectorLaplace(*x, *MakeIdentityOp(8), 0.1).ok());
  Vec xhat(8, 0.0);
  auto denied = k.WorstApprox(*x, *MakeIdentityOp(8), xhat, 0.05);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kBudgetExhausted);
}

TEST(KernelPrivacyTest, BudgetRemainingClampedAtExactlySpentBudget) {
  // 3 x 0.1 FP-accumulates to slightly more than 0.3 (admitted under the
  // tracker's relative slack), which used to make BudgetRemaining() return
  // a tiny negative value.  At exactly-spent budget the remainder must
  // read 0 and a real follow-up request must be refused.
  ProtectedKernel k(UniformTable(4, 1), 0.3, 14);
  auto x = k.TVectorize(k.root());
  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(k.VectorLaplace(*x, *MakeTotalOp(4), 0.1).ok()) << i;
  EXPECT_GE(k.BudgetRemaining(), 0.0);
  EXPECT_LT(k.BudgetRemaining(), 1e-12);
  auto denied = k.VectorLaplace(*x, *MakeTotalOp(4), 0.05);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kBudgetExhausted);
  // The refusal did not disturb the clamp.
  EXPECT_GE(k.BudgetRemaining(), 0.0);
}

TEST(KernelPrivacyTest, ManySmallRequestsEqualOneBig) {
  // 100 x eps/100 charges exactly eps (no drift that could be exploited).
  ProtectedKernel k(UniformTable(4, 1), 1.0, 10);
  auto x = k.TVectorize(k.root());
  for (int i = 0; i < 100; ++i)
    ASSERT_TRUE(k.VectorLaplace(*x, *MakeTotalOp(4), 0.01).ok());
  EXPECT_NEAR(k.BudgetConsumed(), 1.0, 1e-9);
  EXPECT_FALSE(k.VectorLaplace(*x, *MakeTotalOp(4), 0.001).ok());
}

TEST(KernelPrivacyTest, SplitChildrenOfEmptyGroupsAreUsable) {
  // Groups with zero cells never arise from Partition (num_groups counts
  // them), but single-cell groups at the extremes must work.
  ProtectedKernel k(UniformTable(3, 2), 1.0, 11);
  auto x = k.TVectorize(k.root());
  auto ch = k.VSplitByPartition(*x, Partition({0, 1, 2}, 3));
  ASSERT_TRUE(ch.ok());
  ASSERT_EQ(ch->size(), 3u);
  for (SourceId c : *ch) EXPECT_EQ(k.VectorSize(c), 1u);
}

TEST(KernelPrivacyTest, TransformAfterMeasurementStillTracked) {
  // Measuring, transforming, then measuring the transform: both charges
  // land on the root correctly.
  ProtectedKernel k(UniformTable(8, 1), 1.0, 12);
  auto x = k.TVectorize(k.root());
  ASSERT_TRUE(k.VectorLaplace(*x, *MakeTotalOp(8), 0.2).ok());
  auto r = k.VReduceByPartition(*x, Partition::FromIntervals({0, 4}, 8));
  ASSERT_TRUE(k.VectorLaplace(*r, *MakeIdentityOp(2), 0.3).ok());
  EXPECT_NEAR(k.BudgetConsumed(), 0.5, 1e-12);
}

}  // namespace
}  // namespace ektelo
