// Tests for the PrivBayes operators: mutual information, structure
// selection through the kernel's exponential mechanism, marginal
// measurement bookkeeping, and both inference paths.
#include <cmath>

#include "data/generators.h"
#include "gtest/gtest.h"
#include "ops/inference.h"
#include "ops/privbayes.h"
#include "plans/case_studies.h"

namespace ektelo {
namespace {

/// Table with attribute b = a (perfectly correlated) and c independent.
Table CorrelatedTable(std::size_t rows, Rng* rng) {
  Table t(Schema({{"a", 4}, {"b", 4}, {"c", 3}}));
  for (std::size_t r = 0; r < rows; ++r) {
    uint32_t a = static_cast<uint32_t>(rng->UniformInt(0, 3));
    uint32_t c = static_cast<uint32_t>(rng->UniformInt(0, 2));
    t.AppendRow({a, a, c});
  }
  return t;
}

TEST(PrivBayesTest, MiOfIndependentAttrsNearZero) {
  Rng rng(1);
  Table t = CorrelatedTable(5000, &rng);
  double mi = EmpiricalMutualInformation(t, {0}, {2});
  EXPECT_NEAR(mi, 0.0, 0.01);
}

TEST(PrivBayesTest, MiOfCopiedAttrIsEntropy) {
  Rng rng(2);
  Table t = CorrelatedTable(5000, &rng);
  // I(a; b) = H(a) ~= log 4 for a uniform 4-valued attribute.
  double mi = EmpiricalMutualInformation(t, {0}, {1});
  EXPECT_NEAR(mi, std::log(4.0), 0.05);
}

TEST(PrivBayesTest, MiIsSymmetric) {
  Rng rng(3);
  Table t = MakeCreditLike(&rng, 3000);
  double ab = EmpiricalMutualInformation(t, {0}, {1});
  double ba = EmpiricalMutualInformation(t, {1}, {0});
  EXPECT_NEAR(ab, ba, 1e-9);
}

TEST(PrivBayesTest, StructurePicksCorrelatedParentAtHighEps) {
  Rng rng(4);
  Table t = CorrelatedTable(4000, &rng);
  const Schema schema = t.schema();
  int picked_correlated = 0;
  const int trials = 10;
  for (int i = 0; i < trials; ++i) {
    ProtectedKernel kernel(t, 200.0, 50 + i);
    auto result = PrivBayesSelectAndMeasure(&kernel, kernel.root(), schema,
                                            200.0, &rng);
    ASSERT_TRUE(result.ok());
    // Wherever a and b both appear with one as a parent option, the
    // correlated pair should link: look for a clique {a,b}.
    for (const auto& c : result->cliques) {
      if ((c.child == 0 &&
           std::find(c.parents.begin(), c.parents.end(), 1u) !=
               c.parents.end()) ||
          (c.child == 1 &&
           std::find(c.parents.begin(), c.parents.end(), 0u) !=
               c.parents.end())) {
        ++picked_correlated;
        break;
      }
    }
  }
  EXPECT_GE(picked_correlated, 8);
}

TEST(PrivBayesTest, MeasurementsCoverAllAttrsAndBudget) {
  Rng rng(5);
  Table t = CorrelatedTable(1000, &rng);
  ProtectedKernel kernel(t, 1.0, 7);
  auto result = PrivBayesSelectAndMeasure(&kernel, kernel.root(),
                                          t.schema(), 1.0, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cliques.size(), 3u);
  EXPECT_EQ(result->noisy_marginals.size(), 3u);
  EXPECT_NEAR(kernel.BudgetConsumed(), 1.0, 1e-6);
  // Every attribute appears as a child exactly once.
  std::vector<int> seen(3, 0);
  for (const auto& c : result->cliques) seen[c.child]++;
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(PrivBayesTest, ProductEstimateMatchesDataAtHighEps) {
  Rng rng(6);
  Table t = CorrelatedTable(8000, &rng);
  ProtectedKernel kernel(t, 1000.0, 8);
  auto result = PrivBayesSelectAndMeasure(&kernel, kernel.root(),
                                          t.schema(), 1000.0, &rng);
  ASSERT_TRUE(result.ok());
  Vec xhat = PrivBayesProductEstimate(t.schema(), *result);
  Vec x_true = t.Vectorize();
  ASSERT_EQ(xhat.size(), x_true.size());
  EXPECT_NEAR(Sum(xhat), Sum(x_true), 0.05 * Sum(x_true));
  // With b == a captured by the model, off-diagonal (a != b) cells ~ 0.
  // Cell (a=0, b=1, c=0): index = (0*4 + 1)*3 + 0 = 3.
  EXPECT_LT(xhat[3], 0.02 * Sum(x_true));
}

TEST(PrivBayesTest, LsInferenceConsistentWithMeasurements) {
  Rng rng(7);
  Table t = CorrelatedTable(4000, &rng);
  ProtectedKernel kernel(t, 500.0, 9);
  auto xhat = RunPrivBayesLsPlan(&kernel, t.schema(), 500.0, &rng);
  ASSERT_TRUE(xhat.ok());
  Vec x_true = t.Vectorize();
  // At large eps the LS solution reproduces all measured marginals, so
  // the a-marginal must match closely.
  for (std::size_t a = 0; a < 4; ++a) {
    double est = 0.0, truth = 0.0;
    for (std::size_t rest = 0; rest < 12; ++rest) {
      est += (*xhat)[a * 12 + rest];
      truth += x_true[a * 12 + rest];
    }
    EXPECT_NEAR(est, truth, 0.05 * Sum(x_true) + 1.0);
  }
}

TEST(PrivBayesTest, RespectsMaxParents) {
  Rng rng(8);
  Table t = MakeCreditLike(&rng, 2000);
  ProtectedKernel kernel(t, 2.0, 10);
  PrivBayesOptions opts;
  opts.max_parents = 1;
  auto result = PrivBayesSelectAndMeasure(&kernel, kernel.root(),
                                          t.schema(), 2.0, &rng, opts);
  ASSERT_TRUE(result.ok());
  for (const auto& c : result->cliques) EXPECT_LE(c.parents.size(), 1u);
}

}  // namespace
}  // namespace ektelo
