// Beam-search canonicalization (matrix/search.h) and the canonical-tree
// persistence layered on top of it (rewrite.cc CanonicalTree): fuzzed
// three-mode agreement on random operator trees, determinism of the
// search, the stats counters the serving daemon surfaces, the
// composed-vs-materialize decision the cost model is calibrated for, and
// the persist -> reopen warm-load path through the disk tier.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "matrix/combinators.h"
#include "matrix/implicit_ops.h"
#include "matrix/range_ops.h"
#include "matrix/rewrite.h"
#include "matrix/search.h"
#include "store/artifact_store.h"
#include "util/rng.h"

namespace ektelo {
namespace {

namespace fs = std::filesystem;
using store::DiskArtifactStore;
using store::DiskStoreOptions;

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (fs::temp_directory_path() / ("ektelo_search_test_" + name)).string();
  fs::remove_all(dir);
  return dir;
}

CsrMatrix RandomCsr(std::size_t m, std::size_t n, Rng* rng,
                    double density = 0.3) {
  std::vector<Triplet> t;
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (rng->Uniform() < density) t.push_back({i, j, rng->Normal()});
  return CsrMatrix::FromTriplets(m, n, std::move(t));
}

Vec RandomVec(std::size_t n, Rng* rng) {
  Vec v(n);
  for (auto& x : v) x = rng->Normal();
  return v;
}

/// Random operator trees with cols() pinned to `n` (a power of two, so
/// Wavelet leaves are legal), exercising every rule family the search
/// proposes over: implicit leaves, CSR leaves, scale/row-weight wrappers,
/// stacks, and products with sparse reducers.
LinOpPtr RandomLeaf(std::size_t n, Rng* rng) {
  switch (std::size_t(rng->Uniform() * 6) % 6) {
    case 0:
      return MakeIdentityOp(n);
    case 1:
      return MakePrefixOp(n);
    case 2:
      return MakeWaveletOp(n);
    case 3: {
      std::vector<Interval> iv;
      const std::size_t k = 2 + std::size_t(rng->Uniform() * 6);
      for (std::size_t i = 0; i < k; ++i) {
        const std::size_t lo = std::size_t(rng->Uniform() * double(n - 1));
        const std::size_t hi =
            lo + std::size_t(rng->Uniform() * double(n - lo - 1));
        iv.push_back({lo, hi});
      }
      return MakeRangeSetOp(std::move(iv), n);
    }
    case 4:
      return MakeOnesOp(1 + std::size_t(rng->Uniform() * 4), n);
    default:
      return MakeSparse(
          RandomCsr(2 + std::size_t(rng->Uniform() * 10), n, rng, 0.25));
  }
}

LinOpPtr RandomTree(std::size_t n, int depth, Rng* rng) {
  if (depth <= 0) return RandomLeaf(n, rng);
  switch (std::size_t(rng->Uniform() * 5) % 5) {
    case 0:
      return MakeScaled(RandomTree(n, depth - 1, rng),
                        0.25 + rng->Uniform() * 4.0);
    case 1: {
      LinOpPtr c = RandomTree(n, depth - 1, rng);
      Vec w(c->rows());
      for (auto& x : w) x = 0.5 + rng->Uniform();
      return MakeRowWeight(std::move(c), std::move(w));
    }
    case 2: {
      std::vector<LinOpPtr> cs;
      const std::size_t k = 2 + std::size_t(rng->Uniform() * 2);
      for (std::size_t i = 0; i < k; ++i)
        cs.push_back(RandomTree(n, depth - 1, rng));
      return MakeVStack(std::move(cs));
    }
    case 3: {
      // Product(sparse reducer, tree): the shape the materialize rule
      // has to reason about.
      LinOpPtr b = RandomTree(n, depth - 1, rng);
      const std::size_t m = 2 + std::size_t(rng->Uniform() * 8);
      return MakeProduct(MakeSparse(RandomCsr(m, b->rows(), rng, 0.3)), b);
    }
    default: {
      LinOpPtr a = RandomTree(n, depth - 1, rng);
      // Sum needs conformable shapes; stack the tree with itself scaled.
      return MakeSum({a, MakeScaled(a, -0.5)});
    }
  }
}

/// MaybeRewrite under a forced mode, against a cleared cache so modes
/// never see each other's canonical trees.
LinOpPtr RewriteUnder(int mode, const LinOpPtr& op) {
  SetRewriteMode(mode);
  OperatorCache::Global().Clear();
  LinOpPtr out = MaybeRewrite(op);
  SetRewriteMode(-1);
  return out;
}

double MaxRelDiff(const Vec& a, const Vec& b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale = std::max({1.0, std::abs(a[i]), std::abs(b[i])});
    worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
  }
  return worst;
}

// ------------------------------------------------------- mode agreement

TEST(SearchTest, ThreeModesAgreeOnFuzzedTrees) {
  Rng rng(424242);
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t n = 64;
    LinOpPtr tree = RandomTree(n, 1 + iter % 3, &rng);
    LinOpPtr off = RewriteUnder(0, tree);
    LinOpPtr rules = RewriteUnder(1, tree);
    LinOpPtr search = RewriteUnder(2, tree);
    ASSERT_EQ(off.get(), tree.get());  // kOff must not touch the tree
    ASSERT_EQ(rules->rows(), tree->rows());
    ASSERT_EQ(rules->cols(), tree->cols());
    ASSERT_EQ(search->rows(), tree->rows());
    ASSERT_EQ(search->cols(), tree->cols());

    const Vec x = RandomVec(n, &rng);
    const Vec y_off = off->Apply(x);
    const Vec y_rules = rules->Apply(x);
    const Vec y_search = search->Apply(x);
    EXPECT_LE(MaxRelDiff(y_off, y_rules), 1e-10) << "iter " << iter;
    EXPECT_LE(MaxRelDiff(y_rules, y_search), 1e-10) << "iter " << iter;

    const Vec yt = RandomVec(tree->rows(), &rng);
    EXPECT_LE(MaxRelDiff(off->ApplyT(yt), search->ApplyT(yt)), 1e-10)
        << "iter " << iter << " (transpose)";
  }
}

TEST(SearchTest, SearchCanonicalizeIsDeterministic) {
  Rng rng(777);
  for (int iter = 0; iter < 10; ++iter) {
    Rng ra(1000 + iter), rb(1000 + iter);
    LinOpPtr t1 = RandomTree(64, 3, &ra);
    LinOpPtr t2 = RandomTree(64, 3, &rb);  // identical construction
    ASSERT_EQ(t1->StructuralHash(), t2->StructuralHash());
    LinOpPtr c1 = SearchCanonicalize(t1);
    LinOpPtr c2 = SearchCanonicalize(t2);
    EXPECT_EQ(c1->StructuralHash(), c2->StructuralHash()) << "iter " << iter;
    EXPECT_TRUE(c1->StructuralEq(*c2)) << "iter " << iter;
  }
  (void)rng;
}

TEST(SearchTest, AlreadyCanonicalLeafComesBackUntouched) {
  // Nothing fires on a bare CSR leaf: the search must hand back the same
  // pointer so per-instance caches survive, exactly like rules mode.
  Rng rng(9);
  LinOpPtr leaf = MakeSparse(RandomCsr(16, 16, &rng));
  EXPECT_EQ(SearchCanonicalize(leaf).get(), leaf.get());
}

// ------------------------------------------------------------- counters

TEST(SearchTest, StatsCountersAdvance) {
  Rng rng(31337);
  const SearchStats before = GetSearchStats();
  LinOpPtr tree = RandomTree(64, 3, &rng);
  (void)SearchCanonicalize(tree);
  const SearchStats after = GetSearchStats();
  EXPECT_EQ(after.searches, before.searches + 1);
  EXPECT_GT(after.expansions, before.expansions);
}

// ------------------------------------------------- decision direction

TEST(SearchTest, SearchMaterializesTheComposedRangeProduct) {
  // The data-dependent decision rules mode cannot make: RangeSet x CSR
  // grouping stays composed under `rules` but fuses to one small CSR
  // leaf under `search` (the cost model prefers O(nnz) per apply).
  const std::size_t n = 1024, g = n / 16;
  std::vector<Interval> iv;
  for (std::size_t i = 0; i + 256 < n; i += 16) iv.push_back({i, i + 255});
  std::vector<Triplet> trips;
  for (std::size_t c = 0; c < n; ++c) trips.push_back({c, c / 16, 1.0});
  LinOpPtr composed =
      MakeProduct(MakeRangeSetOp(std::move(iv), n),
                  MakeSparse(CsrMatrix::FromTriplets(n, g, std::move(trips))));

  LinOpPtr rules = RewriteUnder(1, composed);
  LinOpPtr search = RewriteUnder(2, composed);
  EXPECT_NE(dynamic_cast<const ProductOp*>(rules.get()), nullptr)
      << "rules mode unexpectedly materialized: " << rules->DebugName();
  EXPECT_NE(dynamic_cast<const SparseOp*>(search.get()), nullptr)
      << "search mode kept the composed form: " << search->DebugName();

  Rng rng(5150);
  const Vec x = RandomVec(g, &rng);
  EXPECT_LE(MaxRelDiff(rules->Apply(x), search->Apply(x)), 1e-10);
}

// ----------------------------------------------------- persistence

TEST(SearchTest, CanonicalTreePersistsAcrossReopen) {
  const std::string dir = FreshDir("canon_reopen");
  DiskStoreOptions opts;
  opts.hash_version = kHashVersion;

  // A tree whose winner is a genuine improvement (the composed product
  // fuses to one CSR leaf): only chosen improvements are persisted — a
  // winner the rules pass would rebuild anyway is never written.
  auto build = [] {
    const std::size_t n = 1024;
    std::vector<Interval> iv;
    for (std::size_t i = 0; i + 256 < n; i += 16) iv.push_back({i, i + 255});
    std::vector<Triplet> trips;
    for (std::size_t c = 0; c < n; ++c) trips.push_back({c, c / 16, 1.0});
    return MakeProduct(
        MakeRangeSetOp(std::move(iv), n),
        MakeSparse(CsrMatrix::FromTriplets(n, n / 16, std::move(trips))));
  };

  SetRewriteMode(2);
  OperatorCache::Global().Clear();
  {
    auto tier = DiskArtifactStore::Open(dir, opts);
    ASSERT_TRUE(tier);
    OperatorCache::Global().SetDiskTier(std::move(tier));
  }
  LinOpPtr cold = MaybeRewrite(build());
  OperatorCache::Global().FlushDiskTier();
  // Simulate process death: drop the tier and every in-memory entry.
  OperatorCache::Global().SetDiskTier(nullptr);
  OperatorCache::Global().Clear();

  // "Fresh process": reopen the same directory, rebuild the same plan.
  {
    auto tier = DiskArtifactStore::Open(dir, opts);
    ASSERT_TRUE(tier);
    OperatorCache::Global().SetDiskTier(std::move(tier));
  }
  const SearchStats searches_before = GetSearchStats();
  const std::size_t tree_disk_before =
      OperatorCache::Global().stats().tree_disk_hits;
  LinOpPtr warm = MaybeRewrite(build());
  EXPECT_EQ(OperatorCache::Global().stats().tree_disk_hits,
            tree_disk_before + 1)
      << "warm canonicalization did not load the persisted tree";
  EXPECT_EQ(GetSearchStats().searches, searches_before.searches)
      << "warm canonicalization re-ran the beam search";
  ASSERT_NE(warm, nullptr);
  EXPECT_EQ(warm->StructuralHash(), cold->StructuralHash());
  EXPECT_TRUE(warm->StructuralEq(*cold));

  // The loaded tree computes the same answers, bitwise-comparable.
  Rng rng(616);
  const Vec x = RandomVec(cold->cols(), &rng);
  const Vec yc = cold->Apply(x);
  const Vec yw = warm->Apply(x);
  ASSERT_EQ(yc.size(), yw.size());
  EXPECT_LE(MaxRelDiff(yc, yw), 0.0);

  OperatorCache::Global().SetDiskTier(nullptr);
  OperatorCache::Global().Clear();
  SetRewriteMode(-1);
  fs::remove_all(dir);
}

TEST(SearchTest, CanonicalTreeHitsInMemoryOnRepeat) {
  SetRewriteMode(2);
  OperatorCache::Global().Clear();
  // Big enough to clear kSearchMinApplySeconds (tiny trees bypass the
  // cache entirely — searching them could never pay off).
  auto build = [] {
    const std::size_t n = 4096;
    std::vector<Interval> iv;
    for (std::size_t i = 0; i + n / 4 < n; i += 16) iv.push_back({i, i + n / 4});
    std::vector<Triplet> trips;
    for (std::size_t c = 0; c < n; ++c) trips.push_back({c, c / 16, 1.0});
    return MakeProduct(
        MakeRangeSetOp(std::move(iv), n),
        MakeSparse(CsrMatrix::FromTriplets(n, n / 16, std::move(trips))));
  };
  const std::size_t tree_hits_before =
      OperatorCache::Global().stats().tree_hits;
  LinOpPtr first = MaybeRewrite(build());
  LinOpPtr again = MaybeRewrite(build());
  EXPECT_GT(OperatorCache::Global().stats().tree_hits, tree_hits_before);
  EXPECT_TRUE(first->StructuralEq(*again));
  OperatorCache::Global().Clear();
  SetRewriteMode(-1);
}

}  // namespace
}  // namespace ektelo
