// Tests for the CGNR least-squares backend and the thresholding
// post-processor.
#include <cmath>

#include "gtest/gtest.h"
#include "linalg/dense.h"
#include "matrix/cg.h"
#include "matrix/implicit_ops.h"
#include "matrix/combinators.h"
#include "ops/inference.h"
#include "util/rng.h"

namespace ektelo {
namespace {

Vec RandomVec(std::size_t n, Rng* rng) {
  Vec v(n);
  for (auto& x : v) x = rng->Normal();
  return v;
}

TEST(CgTest, SolvesConsistentSystem) {
  Rng rng(1);
  DenseMatrix a(10, 10);
  for (std::size_t i = 0; i < 10; ++i)
    for (std::size_t j = 0; j < 10; ++j) a.At(i, j) = rng.Normal();
  Vec x_true = RandomVec(10, &rng);
  Vec b = a.Matvec(x_true);
  CgResult res = CgLeastSquares(*MakeDense(a), b);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(res.x[i], x_true[i], 1e-4);
}

TEST(CgTest, MatchesDirectOnOverdetermined) {
  Rng rng(2);
  DenseMatrix a(30, 8);
  for (std::size_t i = 0; i < 30; ++i)
    for (std::size_t j = 0; j < 8; ++j) a.At(i, j) = rng.Normal();
  Vec b = RandomVec(30, &rng);
  Vec direct = DirectLeastSquares(a, b);
  CgResult res = CgLeastSquares(*MakeDense(a), b);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(res.x[i], direct[i], 1e-4);
}

TEST(CgTest, AgreesWithLsmrOnHierarchy) {
  Rng rng(3);
  const std::size_t n = 128;
  auto m = MakeVStack({MakeTotalOp(n), MakeIdentityOp(n)});
  Vec y = m->Apply(RandomVec(n, &rng));
  for (auto& v : y) v += rng.Laplace(1.0);
  MeasurementSet mset;
  mset.Add(m, y, 1.0);
  Vec lsmr = LeastSquaresInference(mset);
  Vec cg = CgLeastSquaresInference(mset);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(lsmr[i], cg[i], 1e-4);
}

TEST(CgTest, ZeroRhsGivesZero) {
  CgResult res = CgLeastSquares(*MakeIdentityOp(6), Vec(6, 0.0));
  for (double v : res.x) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_EQ(res.iterations, 0u);
}

TEST(CgTest, ConvergesFastOnWellConditioned) {
  CgResult res = CgLeastSquares(*MakeIdentityOp(256), Vec(256, 3.0));
  EXPECT_LE(res.iterations, 3u);
}

TEST(ThresholdingTest, ZeroesSmallEntriesOnly) {
  Vec x = {0.5, -0.4, 10.0, -7.0, 0.0};
  Vec t = ThresholdingInference(x, 1.0);
  EXPECT_DOUBLE_EQ(t[0], 0.0);
  EXPECT_DOUBLE_EQ(t[1], 0.0);
  EXPECT_DOUBLE_EQ(t[2], 10.0);
  EXPECT_DOUBLE_EQ(t[3], -7.0);
}

TEST(ThresholdingTest, ZeroThresholdIsIdentity) {
  Vec x = {0.1, -0.1};
  Vec t = ThresholdingInference(x, 0.0);
  EXPECT_DOUBLE_EQ(t[0], 0.1);
  EXPECT_DOUBLE_EQ(t[1], -0.1);
}

TEST(ThresholdingTest, ImprovesSparseEstimates) {
  // On sparse data, zeroing the noise floor reduces error (AHP's trick).
  Rng rng(4);
  const std::size_t n = 512;
  Vec x_true(n, 0.0);
  x_true[7] = 500.0;
  x_true[300] = 800.0;
  Vec noisy = x_true;
  const double scale = 10.0;
  for (auto& v : noisy) v += rng.Laplace(scale);
  Vec cleaned = ThresholdingInference(noisy, 2.0 * scale);
  EXPECT_LT(Rmse(cleaned, x_true), Rmse(noisy, x_true));
}

}  // namespace
}  // namespace ektelo
