// Registry-wide rewrite A/B/C: every catalog plan must produce the same
// result at every EKTELO_REWRITE mode — `rules` within 1e-9 (relative)
// of `off`, `search` within 1e-10 of `rules` (the beam search only picks
// different *representations* of the same trees, so it sits tighter to
// rules than rules sits to off) — with identical budget and an identical
// order-normalized kernel transcript at every mode (the privacy-relevant
// path is untouched by construction: measurement operators are applied
// and charged as authored).
//
// Plans whose stacks the rewriter cannot change are bitwise-equal; the
// MWEM family (merged measurement unions feeding iterative solvers)
// agrees to solver-roundoff, which the 1e-9 bar covers because the MWEM
// NNLS variants solve to a tight fixed tolerance.
#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "data/generators.h"
#include "gtest/gtest.h"
#include "matrix/rewrite.h"
#include "plans/registry.h"
#include "workload/workloads.h"

namespace ektelo {
namespace {

struct RunResult {
  Vec xhat;
  bool ok = false;
  std::string error;
  double budget = 0.0;
  std::vector<std::tuple<std::string, double, double>> transcript;
};

RunResult RunPlan(const Plan& plan, int mode) {
  SetRewriteMode(mode);  // 0 = off, 1 = rules, 2 = search
  // Each mode starts cold: no canonical trees or artifacts computed by
  // another mode's run leak across.
  OperatorCache::Global().Clear();

  const double eps = 0.5;
  Rng rng(31);  // identical environment for every mode
  Vec hist;
  std::vector<std::size_t> dims;
  switch (plan.domain()) {
    case DomainKind::k1D:
      dims = {64};
      hist = MakeHistogram1D(Shape1D::kGaussianMix, 64, 2000.0, &rng);
      break;
    case DomainKind::k2D:
      dims = {8, 8};
      hist = MakeHistogram2D(8, 8, 2000.0, &rng);
      break;
    case DomainKind::kMultiDim:
      dims = {16, 2, 2};
      hist = MakeHistogram1D(Shape1D::kStep, 64, 2000.0, &rng);
      break;
  }
  const std::size_t n = hist.size();
  auto ranges = RandomRanges(20, n, 16, &rng);
  auto w = RangeQueryOp(ranges, n);

  ProtectedKernel kernel(TableFromHistogram(hist, "v"), eps, 515151);
  ProtectedTable root = ProtectedTable::Root(&kernel);
  auto x = root.Vectorize();
  EK_CHECK(x.ok());
  BudgetScope scope(eps);
  Rng client_rng(7);
  PlanInput in;
  in.dims = dims;
  in.ranges = ranges;
  in.workload = w;
  in.workload_factors = {w};
  in.known_total = Sum(hist);
  in.rng = &client_rng;
  in.stripe_dim = 0;

  RunResult r;
  StatusOr<Vec> xhat = plan.Execute(*x, scope, in);
  r.ok = xhat.ok();
  if (!r.ok) {
    r.error = xhat.status().ToString();
    return r;
  }
  r.xhat = std::move(*xhat);
  r.budget = kernel.BudgetConsumed();
  for (const auto& e : kernel.transcript())
    r.transcript.emplace_back(e.op, e.eps, e.noise_scale);
  std::sort(r.transcript.begin(), r.transcript.end());
  return r;
}

void ExpectAgree(const RunResult& base, const RunResult& other, double tol) {
  ASSERT_EQ(other.xhat.size(), base.xhat.size());
  for (std::size_t i = 0; i < base.xhat.size(); ++i) {
    const double scale = std::max(1.0, std::abs(base.xhat[i]));
    EXPECT_LE(std::abs(other.xhat[i] - base.xhat[i]), tol * scale)
        << "component " << i;
  }
  // The privacy path is untouched: same charges, same noise draws, same
  // (order-normalized) transcript rows.
  EXPECT_EQ(other.budget, base.budget);
  EXPECT_EQ(other.transcript, base.transcript);
}

TEST(RewriteEquivalenceTest, EveryPlanAgreesAcrossAllThreeModes) {
  const std::vector<const Plan*> catalog = PlanRegistry::Global().Catalog();
  ASSERT_FALSE(catalog.empty());
  for (const Plan* plan : catalog) {
    SCOPED_TRACE(plan->name());
    const RunResult off = RunPlan(*plan, 0);
    const RunResult rules = RunPlan(*plan, 1);
    const RunResult search = RunPlan(*plan, 2);
    SetRewriteMode(-1);
    ASSERT_EQ(off.ok, rules.ok) << off.error << " / " << rules.error;
    ASSERT_EQ(rules.ok, search.ok) << rules.error << " / " << search.error;
    if (!off.ok) continue;
    ExpectAgree(off, rules, 1e-9);
    ExpectAgree(rules, search, 1e-10);
  }
  SetRewriteMode(-1);
  OperatorCache::Global().Clear();
}

// The dense/sparse physical-representation sweep goes through the
// OperatorCache (ApplyMode conversions); the cache must be invisible in
// the results.
TEST(RewriteEquivalenceTest, ModeSweepMatchesRewriteOff) {
  for (MatrixMode mode : {MatrixMode::kDense, MatrixMode::kSparse}) {
    for (const Plan* plan : PlanRegistry::Global().Catalog()) {
      if (!plan->mode_sweep()) continue;
      SCOPED_TRACE(plan->name() + std::string("/") + MatrixModeName(mode));
      auto run = [&](int rewrite_mode) {
        SetRewriteMode(rewrite_mode);
        OperatorCache::Global().Clear();
        const double eps = 0.5;
        Rng rng(97);
        Vec hist = MakeHistogram1D(Shape1D::kStep, 32, 1500.0, &rng);
        auto ranges = RandomRanges(12, 32, 8, &rng);
        ProtectedKernel kernel(TableFromHistogram(hist, "v"), eps, 626262);
        ProtectedTable root = ProtectedTable::Root(&kernel);
        auto x = root.Vectorize();
        EK_CHECK(x.ok());
        BudgetScope scope(eps);
        PlanInput in;
        in.dims = {32};
        in.mode = mode;
        in.ranges = ranges;
        in.known_total = Sum(hist);
        StatusOr<Vec> xhat = plan->Execute(*x, scope, in);
        EK_CHECK(xhat.ok());
        return *xhat;
      };
      const Vec off = run(0);
      const Vec rules = run(1);
      const Vec search = run(2);
      SetRewriteMode(-1);
      ASSERT_EQ(rules.size(), off.size());
      ASSERT_EQ(search.size(), off.size());
      for (std::size_t i = 0; i < off.size(); ++i) {
        EXPECT_NEAR(rules[i], off[i], 1e-9 * std::max(1.0, std::abs(off[i])))
            << i;
        EXPECT_NEAR(search[i], rules[i],
                    1e-10 * std::max(1.0, std::abs(rules[i])))
            << i;
      }
    }
  }
  SetRewriteMode(-1);
  OperatorCache::Global().Clear();
}

}  // namespace
}  // namespace ektelo
