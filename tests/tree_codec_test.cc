// Tag+payload tree codec (store/tree_codec.h): per-kind round-trip with
// re-encode byte identity (the determinism the disk tier's checksums and
// the root-hash integrity check both rely on), fail-closed behavior on
// unknown operator subclasses and over-deep trees, and rejection of
// truncated, corrupted, or hash-tampered payloads without crashing.
#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "matrix/combinators.h"
#include "matrix/implicit_ops.h"
#include "matrix/linop.h"
#include "matrix/range_ops.h"
#include "store/serialize.h"
#include "store/tree_codec.h"
#include "util/rng.h"

namespace ektelo {
namespace {

using store::ByteReader;
using store::ByteWriter;

CsrMatrix SmallCsr() {
  std::vector<Triplet> t = {{0, 0, 1.5}, {0, 3, -2.0}, {1, 1, 0.25},
                            {2, 0, 4.0}, {3, 2, -0.125}};
  return CsrMatrix::FromTriplets(4, 4, std::move(t));
}

std::vector<uint8_t> MustEncode(const LinOp& op) {
  ByteWriter w;
  EXPECT_TRUE(store::EncodeLinOpTree(op, &w)) << op.DebugName();
  return w.Take();
}

/// Encode -> decode -> re-encode: the decoded tree must be structurally
/// identical and must serialize to byte-identical output.
void ExpectRoundTrip(const LinOpPtr& op) {
  SCOPED_TRACE(op->DebugName());
  const std::vector<uint8_t> bytes = MustEncode(*op);
  ByteReader r(bytes);
  LinOpPtr back = store::DecodeLinOpTree(&r);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(back->rows(), op->rows());
  EXPECT_EQ(back->cols(), op->cols());
  EXPECT_EQ(back->StructuralHash(), op->StructuralHash());
  EXPECT_TRUE(back->StructuralEq(*op));
  const std::vector<uint8_t> again = MustEncode(*back);
  ASSERT_EQ(again.size(), bytes.size());
  EXPECT_EQ(std::memcmp(again.data(), bytes.data(), bytes.size()), 0);
}

/// A composite covering every combinator in one tree (the shape the
/// canonical-tree persistence actually stores).
LinOpPtr CompositeTree() {
  // Transpose child has rows 4 so the transpose's cols match the stack.
  DenseMatrix d(4, 2);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 2; ++j) d.At(i, j) = 0.5 * double(i) - double(j);
  Vec w(4);
  for (std::size_t i = 0; i < 4; ++i) w[i] = 1.0 + 0.25 * double(i);
  return MakeVStack(
      {MakeScaled(MakeProduct(MakeSparse(SmallCsr()), MakeWaveletOp(4)), 0.75),
       MakeRowWeight(MakeRangeSetOp({{0, 1}, {1, 3}, {0, 3}, {2, 2}}, 4),
                     std::move(w)),
       MakeTranspose(MakeHStack({MakeDense(std::move(d)),
                                 MakeKronecker(MakeIdentityOp(2),
                                               MakeOnesOp(2, 2))}))});
}

// ------------------------------------------------------------ round trips

TEST(TreeCodecTest, EveryKindRoundTripsBitExactly) {
  DenseMatrix d(3, 4);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 4; ++j) d.At(i, j) = double(i * 4 + j) - 5.5;
  const std::vector<LinOpPtr> ops = {
      MakeDense(std::move(d)),
      MakeSparse(SmallCsr()),
      MakeIdentityOp(8),
      MakeOnesOp(3, 5),
      MakePrefixOp(8),
      MakeSuffixOp(8),
      MakeWaveletOp(8),
      MakeRangeSetOp({{0, 3}, {2, 7}, {5, 5}}, 8),
      MakeRectangleSetOp({{0, 2, 1, 3}, {1, 1, 0, 0}}, 4, 4),
      MakeTranspose(MakeRangeSetOp({{0, 6}}, 8)),
      MakeScaled(MakePrefixOp(8), -2.5),
      MakeRowWeight(MakeIdentityOp(4), Vec{1.0, 0.5, -3.0, 2.0}),
      MakeProduct(MakeSparse(SmallCsr()), MakePrefixOp(4)),
      MakeProduct(MakeIdentityOp(4), MakeIdentityOp(4),
                  /*binary_hint=*/true),
      MakeKronecker(MakeIdentityOp(2), MakePrefixOp(4)),
      MakeVStack({MakePrefixOp(8), MakeIdentityOp(8)}),
      MakeHStack({MakeIdentityOp(4), MakeOnesOp(4, 4)}),
      MakeSum({MakeIdentityOp(4), MakeScaled(MakeIdentityOp(4), 2.0)}),
      MakePrefixOp(8)->Gram(),
      CompositeTree(),
  };
  for (const LinOpPtr& op : ops) ExpectRoundTrip(op);
}

TEST(TreeCodecTest, DecodedTreeComputesTheSameMatrix) {
  LinOpPtr op = CompositeTree();
  const std::vector<uint8_t> bytes = MustEncode(*op);
  ByteReader r(bytes);
  LinOpPtr back = store::DecodeLinOpTree(&r);
  ASSERT_NE(back, nullptr);
  Rng rng(99);
  Vec x(op->cols());
  for (auto& v : x) v = rng.Normal();
  const Vec ya = op->Apply(x);
  const Vec yb = back->Apply(x);
  ASSERT_EQ(ya.size(), yb.size());
  // Same tree, same traversal: bitwise-identical applies.
  EXPECT_EQ(std::memcmp(ya.data(), yb.data(), ya.size() * sizeof(double)), 0);
}

// ------------------------------------------------------------ fail closed

TEST(TreeCodecTest, UnknownSubclassFailsClosed) {
  class MysteryOp final : public LinOp {
   public:
    MysteryOp() : LinOp(4, 4) {}
    void ApplyRaw(const double*, double*) const override {}
    void ApplyTRaw(const double*, double*) const override {}
    std::string DebugName() const override { return "Mystery"; }
  };
  MysteryOp op;
  ByteWriter w;
  EXPECT_FALSE(store::EncodeLinOpTree(op, &w));
  // ...including one buried inside an otherwise encodable tree.
  LinOpPtr wrapped = MakeScaled(std::make_shared<MysteryOp>(), 2.0);
  ByteWriter w2;
  EXPECT_FALSE(store::EncodeLinOpTree(*wrapped, &w2));
}

TEST(TreeCodecTest, OverDeepTreeFailsClosed) {
  LinOpPtr op = MakeIdentityOp(2);
  for (int i = 0; i < 80; ++i) op = MakeScaled(op, 2.0);  // > kMaxDepth
  ByteWriter w;
  EXPECT_FALSE(store::EncodeLinOpTree(*op, &w));
}

// ------------------------------------------------------------- integrity

TEST(TreeCodecTest, TamperedRootHashIsRejected) {
  std::vector<uint8_t> bytes = MustEncode(*MakePrefixOp(16));
  ASSERT_GT(bytes.size(), 8u);
  bytes[3] ^= 0x40;  // inside the leading root-hash field
  ByteReader r(bytes);
  EXPECT_EQ(store::DecodeLinOpTree(&r), nullptr);
}

TEST(TreeCodecTest, EveryTruncationIsRejectedWithoutCrashing) {
  const std::vector<uint8_t> bytes = MustEncode(*CompositeTree());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    ByteReader r(bytes.data(), len);
    EXPECT_EQ(store::DecodeLinOpTree(&r), nullptr) << "prefix len " << len;
  }
}

TEST(TreeCodecTest, SingleByteCorruptionNeverYieldsAWrongTree) {
  LinOpPtr op = CompositeTree();
  const std::vector<uint8_t> bytes = MustEncode(*op);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<uint8_t> bad = bytes;
    bad[i] ^= 0x5A;
    ByteReader r(bad);
    LinOpPtr back = store::DecodeLinOpTree(&r);
    // The root-hash check makes every flip either unparseable or, at
    // minimum, detectably a different tree — a successful decode must
    // be structurally identical to the original (e.g. a flip in
    // trailing slack would be; the codec has none today).
    if (back != nullptr) {
      EXPECT_TRUE(back->StructuralEq(*op)) << "byte " << i;
    }
  }
}

}  // namespace
}  // namespace ektelo
