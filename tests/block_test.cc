// Unit tests for the blocked operator core: the Block multi-vector, the
// dense/CSR/Haar blocked kernels, the LinOp default block fallbacks, the
// identity-panel materialization fallback, and the Gram-driven solvers.
#include <cmath>

#include "gtest/gtest.h"
#include "linalg/block.h"
#include "linalg/haar.h"
#include "matrix/cg.h"
#include "matrix/combinators.h"
#include "matrix/implicit_ops.h"
#include "matrix/linop.h"
#include "matrix/lsmr.h"
#include "util/rng.h"

namespace ektelo {
namespace {

Vec RandomVec(std::size_t n, Rng* rng) {
  Vec v(n);
  for (auto& x : v) x = rng->Normal();
  return v;
}

Block RandomBlock(std::size_t n, std::size_t k, Rng* rng) {
  Block b(n, k);
  for (std::size_t c = 0; c < k; ++c) b.SetCol(c, RandomVec(n, rng));
  return b;
}

DenseMatrix RandomDense(std::size_t m, std::size_t n, Rng* rng) {
  DenseMatrix d(m, n);
  for (double& v : d.data()) v = rng->Normal();
  return d;
}

/// Wraps an operator but exposes only the single-vector interface, so the
/// LinOp *default* block/materialize/Gram fallbacks are what gets tested.
class OpaqueOp final : public LinOp {
 public:
  explicit OpaqueOp(LinOpPtr inner)
      : LinOp(inner->rows(), inner->cols()), inner_(std::move(inner)) {}
  void ApplyRaw(const double* x, double* y) const override {
    inner_->ApplyRaw(x, y);
  }
  void ApplyTRaw(const double* x, double* y) const override {
    inner_->ApplyTRaw(x, y);
  }
  std::string DebugName() const override { return "Opaque"; }

 private:
  LinOpPtr inner_;
};

TEST(BlockTest, IdentityPanelAndColumnAccess) {
  Block p = Block::IdentityPanel(6, 2, 3);
  EXPECT_EQ(p.rows(), 6u);
  EXPECT_EQ(p.cols(), 3u);
  for (std::size_t c = 0; c < 3; ++c)
    for (std::size_t i = 0; i < 6; ++i)
      EXPECT_DOUBLE_EQ(p.At(i, c), (i == 2 + c) ? 1.0 : 0.0);

  Vec v{1.0, 2.0, 3.0};
  Block b = Block::FromColumn(v, 2);
  EXPECT_EQ(b.Col(0), v);
  EXPECT_EQ(b.Col(1), v);
  b.SetCol(1, Vec{4.0, 5.0, 6.0});
  EXPECT_EQ(b.Col(0), v);
  EXPECT_DOUBLE_EQ(b.At(2, 1), 6.0);
}

TEST(BlockTest, DenseBlockedKernelsMatchMatvec) {
  Rng rng(11);
  for (int iter = 0; iter < 10; ++iter) {
    const std::size_t m = 1 + std::size_t(rng.UniformInt(1, 12));
    const std::size_t n = 1 + std::size_t(rng.UniformInt(1, 12));
    const std::size_t k = 1 + std::size_t(rng.UniformInt(0, 6));
    DenseMatrix a = RandomDense(m, n, &rng);
    Block x = RandomBlock(n, k, &rng);
    Block y(m, k);
    DenseMatmat(a, x.data(), y.data(), k);
    for (std::size_t c = 0; c < k; ++c) {
      Vec want = a.Matvec(x.Col(c));
      for (std::size_t i = 0; i < m; ++i)
        EXPECT_NEAR(y.At(i, c), want[i], 1e-12);
    }
    Block u = RandomBlock(m, k, &rng);
    Block z(n, k);
    DenseRmatMat(a, u.data(), z.data(), k);
    for (std::size_t c = 0; c < k; ++c) {
      Vec want = a.RmatVec(u.Col(c));
      for (std::size_t j = 0; j < n; ++j)
        EXPECT_NEAR(z.At(j, c), want[j], 1e-12);
    }
  }
}

TEST(BlockTest, CsrBlockedKernelsMatchMatvec) {
  Rng rng(13);
  for (int iter = 0; iter < 10; ++iter) {
    const std::size_t m = 1 + std::size_t(rng.UniformInt(1, 12));
    const std::size_t n = 1 + std::size_t(rng.UniformInt(1, 12));
    const std::size_t k = 1 + std::size_t(rng.UniformInt(0, 6));
    std::vector<Triplet> t;
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j)
        if (rng.Uniform() < 0.35) t.push_back({i, j, rng.Normal()});
    CsrMatrix a = CsrMatrix::FromTriplets(m, n, std::move(t));
    Block x = RandomBlock(n, k, &rng);
    Block y(m, k);
    CsrMatmat(a, x.data(), y.data(), k);
    for (std::size_t c = 0; c < k; ++c) {
      Vec want = a.Matvec(x.Col(c));
      for (std::size_t i = 0; i < m; ++i)
        EXPECT_NEAR(y.At(i, c), want[i], 1e-12);
    }
    Block u = RandomBlock(m, k, &rng);
    Block z(n, k);
    CsrRmatMat(a, u.data(), z.data(), k);
    for (std::size_t c = 0; c < k; ++c) {
      Vec want = a.RmatVec(u.Col(c));
      for (std::size_t j = 0; j < n; ++j)
        EXPECT_NEAR(z.At(j, c), want[j], 1e-12);
    }
  }
}

TEST(BlockTest, HaarBlockedKernelsMatchScalar) {
  Rng rng(17);
  for (std::size_t n : {1u, 2u, 8u, 32u}) {
    const std::size_t k = 3;
    Block x = RandomBlock(n, k, &rng);
    Block y(n, k);
    HaarAnalysisBlock(x.data(), y.data(), n, k);
    for (std::size_t c = 0; c < k; ++c) {
      Vec want(n);
      HaarAnalysis(x.ColPtr(c), want.data(), n);
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(y.At(i, c), want[i], 1e-12);
    }
    Block z(n, k);
    HaarSynthesisBlock(x.data(), z.data(), n, k);
    for (std::size_t c = 0; c < k; ++c) {
      Vec want(n);
      HaarSynthesis(x.ColPtr(c), want.data(), n);
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(z.At(i, c), want[i], 1e-12);
    }
  }
}

TEST(BlockTest, DefaultBlockFallbackLoopsColumns) {
  Rng rng(19);
  auto opaque = std::make_shared<OpaqueOp>(MakePrefixOp(9));
  Block x = RandomBlock(9, 4, &rng);
  Block y = opaque->ApplyBlock(x);
  for (std::size_t c = 0; c < 4; ++c) {
    Vec want = opaque->Apply(x.Col(c));
    EXPECT_EQ(y.Col(c), want);
  }
  Block u = RandomBlock(9, 4, &rng);
  Block z = opaque->ApplyTBlock(u);
  for (std::size_t c = 0; c < 4; ++c) {
    Vec want = opaque->ApplyT(u.Col(c));
    EXPECT_EQ(z.Col(c), want);
  }
}

TEST(BlockTest, PanelMaterializationMatchesStructuredAndDropsZeros) {
  // Domain > panel width so the fallback runs multiple panels.
  const std::size_t n = 3 * LinOp::kMaterializePanel / 2 + 5;
  auto prefix = MakePrefixOp(n);
  auto opaque = std::make_shared<OpaqueOp>(prefix);
  CsrMatrix got = opaque->MaterializeSparse();   // panel fallback
  CsrMatrix want = prefix->MaterializeSparse();  // direct construction
  EXPECT_TRUE(got.ToDense().ApproxEquals(want.ToDense(), 1e-12));
  // Prefix is lower triangular: exactly n(n+1)/2 nonzeros survive, i.e.
  // the strict upper triangle's exact zeros were dropped.
  EXPECT_EQ(got.nnz(), n * (n + 1) / 2);
}

TEST(BlockTest, GramOperatorOfOpaqueOpIsExact) {
  Rng rng(23);
  DenseMatrix d = RandomDense(7, 5, &rng);
  auto opaque = std::make_shared<OpaqueOp>(MakeDense(d));
  LinOpPtr g = opaque->Gram();
  DenseMatrix want = d.Gram();
  EXPECT_TRUE(g->MaterializeDense().ApproxEquals(want, 1e-10));
  // The composed Gram applies blocked end to end.
  Block x = RandomBlock(5, 3, &rng);
  Block y = g->ApplyBlock(x);
  for (std::size_t c = 0; c < 3; ++c) {
    Vec want_col = want.Matvec(x.Col(c));
    for (std::size_t i = 0; i < 5; ++i)
      EXPECT_NEAR(y.At(i, c), want_col[i], 1e-10);
  }
}

TEST(BlockTest, CgSpdSolvesGramSystem) {
  Rng rng(29);
  DenseMatrix d = RandomDense(12, 6, &rng);
  auto a = MakeDense(d);
  Vec x_true = RandomVec(6, &rng);
  Vec b = a->Gram()->Apply(x_true);
  CgResult r = CgSpd(*a->Gram(), b, {.tol = 1e-12, .max_iters = 200});
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(r.x[i], x_true[i], 1e-6);
}

TEST(BlockTest, LsmrMultiSolvesEachColumn) {
  Rng rng(31);
  DenseMatrix d = RandomDense(10, 4, &rng);
  auto a = MakeDense(d);
  Block xs = RandomBlock(4, 3, &rng);
  Block rhs = a->ApplyBlock(xs);
  auto results = LsmrMulti(*a, rhs);
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t c = 0; c < 3; ++c)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_NEAR(results[c].x[j], xs.At(j, c), 1e-5);
}

TEST(BlockTest, StructuredGramsHaveStructuredNames) {
  // Spot-check that the closed forms actually kick in (not the composed
  // default): Kron distributes, Identity is idempotent, VStack sums.
  auto kron = MakeKronecker(MakePrefixOp(4), MakeIdentityOp(3));
  EXPECT_EQ(kron->Gram()->DebugName().substr(0, 5), "Kron(");
  auto ident = MakeIdentityOp(5);
  EXPECT_EQ(ident->Gram().get(), ident.get());
  auto stack = MakeVStack({MakeIdentityOp(4), MakePrefixOp(4)});
  EXPECT_EQ(stack->Gram()->DebugName().substr(0, 4), "Sum(");
  auto scaled = MakeScaled(MakePrefixOp(4), 3.0);
  EXPECT_EQ(scaled->Gram()->DebugName().substr(0, 6), "Scale(");
}

TEST(BlockTest, GramWorksOnStackAllocatedOperators) {
  // Solver entry points take const LinOp&, so Gram() must not require the
  // operator to be owned by a shared_ptr.
  PrefixOp prefix(6);  // no structured Gram: exercises the composed default
  LinOpPtr g = prefix.Gram();
  DenseMatrix want = prefix.MaterializeDense().Gram();
  EXPECT_TRUE(g->MaterializeDense().ApproxEquals(want, 1e-12));
  IdentityOp ident(4);  // structured Gram returning the operator itself
  EXPECT_TRUE(ident.Gram()->MaterializeDense().ApproxEquals(
      DenseMatrix::Identity(4), 1e-12));
}

TEST(BlockTest, SensitivityCachingIsStableAcrossRepeatedCalls) {
  // Regression: cached sensitivities must be bit-identical on repeat and
  // equal to the materialized column norms.
  auto op = MakeVStack({MakeWaveletOp(16), MakePrefixOp(16)});
  const double l1_first = op->SensitivityL1();
  const double l2_first = op->SensitivityL2();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(op->SensitivityL1(), l1_first);
    EXPECT_EQ(op->SensitivityL2(), l2_first);
  }
  DenseMatrix d = op->MaterializeDense();
  EXPECT_NEAR(l1_first, d.MaxColNormL1(), 1e-9);
  EXPECT_NEAR(l2_first, d.MaxColNormL2(), 1e-9);
}

}  // namespace
}  // namespace ektelo
