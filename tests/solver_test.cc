// Tests for the iterative solvers (LSMR, NNLS) that power EKTELO's
// general-purpose inference operators.
#include <cmath>

#include "gtest/gtest.h"
#include "linalg/dense.h"
#include "matrix/combinators.h"
#include "matrix/implicit_ops.h"
#include "matrix/lsmr.h"
#include "matrix/nnls.h"
#include "util/rng.h"

namespace ektelo {
namespace {

Vec RandomVec(std::size_t n, Rng* rng) {
  Vec v(n);
  for (auto& x : v) x = rng->Normal();
  return v;
}

DenseMatrix RandomDense(std::size_t m, std::size_t n, Rng* rng) {
  DenseMatrix a(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) a.At(i, j) = rng->Normal();
  return a;
}

TEST(LsmrTest, SolvesConsistentSquareSystem) {
  Rng rng(1);
  DenseMatrix a = RandomDense(8, 8, &rng);
  Vec x_true = RandomVec(8, &rng);
  Vec b = a.Matvec(x_true);
  auto op = MakeDense(a);
  LsmrResult res = Lsmr(*op, b);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(res.x[i], x_true[i], 1e-6);
  EXPECT_LT(res.residual_norm, 1e-6 * Norm2(b) + 1e-9);
}

TEST(LsmrTest, MatchesDirectLeastSquaresOverdetermined) {
  Rng rng(2);
  DenseMatrix a = RandomDense(30, 10, &rng);
  Vec b = RandomVec(30, &rng);
  Vec x_direct = DirectLeastSquares(a, b);
  LsmrResult res = Lsmr(*MakeDense(a), b);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_NEAR(res.x[i], x_direct[i], 1e-5);
}

TEST(LsmrTest, MinimumNormSolutionUnderdetermined) {
  // For rank-deficient/underdetermined systems LSMR converges to the
  // minimum-norm least-squares solution, like the pseudo-inverse.
  Rng rng(3);
  DenseMatrix a = RandomDense(4, 10, &rng);
  Vec b = RandomVec(4, &rng);
  LsmrResult res = Lsmr(*MakeDense(a), b);
  // Residual should be ~0 (system is consistent w.h.p.).
  Vec ax = a.Matvec(res.x);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(ax[i], b[i], 1e-6);
  // Minimum-norm: x must lie in the row space, x = A^T z.
  // Check by comparing against pinv solution.
  DenseMatrix at = a.Transpose();
  Vec z = DirectLeastSquares(at, res.x);  // z: A^T z ≈ x
  Vec x_rowspace = at.Matvec(z);
  for (std::size_t j = 0; j < 10; ++j)
    EXPECT_NEAR(res.x[j], x_rowspace[j], 1e-4);
}

TEST(LsmrTest, ZeroRhsGivesZero) {
  auto op = MakeIdentityOp(5);
  LsmrResult res = Lsmr(*op, Vec(5, 0.0));
  for (double v : res.x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(LsmrTest, WorksOnImplicitHierarchy) {
  // H = [Total; Identity] measured exactly should reconstruct x exactly.
  const std::size_t n = 64;
  auto m = MakeVStack({MakeTotalOp(n), MakeIdentityOp(n)});
  Rng rng(4);
  Vec x_true(n);
  for (auto& v : x_true) v = std::abs(rng.Normal()) * 10.0;
  Vec y = m->Apply(x_true);
  LsmrResult res = Lsmr(*m, y);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(res.x[i], x_true[i], 1e-6);
}

TEST(LsmrTest, WeightedMeasurementsViaRowWeight) {
  // Weighting rows (precision weighting) changes the LS solution in the
  // expected direction: the heavily weighted duplicate dominates.
  const std::size_t n = 4;
  // Two copies of Identity with different weights and conflicting y.
  auto id = MakeIdentityOp(n);
  auto heavy = MakeRowWeight(id, Vec(n, 10.0));
  auto m = MakeVStack({id, heavy});
  Vec y(2 * n);
  for (std::size_t i = 0; i < n; ++i) y[i] = 0.0;          // light: says 0
  for (std::size_t i = 0; i < n; ++i) y[n + i] = 10.0;     // heavy: says 1
  LsmrResult res = Lsmr(*m, y);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GT(res.x[i], 0.9);  // pulled toward heavy-weight value 1.0
    EXPECT_LT(res.x[i], 1.01);
  }
}

TEST(NnlsTest, MatchesUnconstrainedWhenInteriorSolution) {
  Rng rng(5);
  DenseMatrix a = RandomDense(20, 6, &rng);
  Vec x_true(6);
  for (auto& v : x_true) v = std::abs(rng.Normal()) + 0.5;  // positive
  Vec b = a.Matvec(x_true);
  NnlsResult res = Nnls(*MakeDense(a), b, {.max_iters = 2000, .tol = 1e-12});
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(res.x[i], x_true[i], 1e-4);
}

TEST(NnlsTest, ClampsNegativeComponents) {
  // min ||x - b|| with b negative => x = 0.
  auto id = MakeIdentityOp(3);
  NnlsResult res = Nnls(*id, {-1.0, -2.0, 3.0});
  EXPECT_NEAR(res.x[0], 0.0, 1e-9);
  EXPECT_NEAR(res.x[1], 0.0, 1e-9);
  EXPECT_NEAR(res.x[2], 3.0, 1e-6);
}

TEST(NnlsTest, AllZeroIsFeasible) {
  auto id = MakeIdentityOp(4);
  NnlsResult res = Nnls(*id, Vec(4, 0.0));
  for (double v : res.x) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(NnlsTest, HierarchicalMeasurementsNonneg) {
  const std::size_t n = 32;
  auto m = MakeVStack({MakeTotalOp(n), MakeIdentityOp(n)});
  Rng rng(6);
  Vec x_true(n);
  for (auto& v : x_true) v = std::max(0.0, rng.Normal() * 5.0);
  Vec y = m->Apply(x_true);
  // Perturb y so the unconstrained solution would go negative.
  for (auto& v : y) v += rng.Laplace(2.0);
  NnlsResult res = Nnls(*m, y, {.max_iters = 1000});
  for (double v : res.x) EXPECT_GE(v, -1e-12);
}

TEST(SpectralNormTest, MatchesKnownValue) {
  // Identity has spectral norm^2 = 1; Ones(m,n) has ||A||_2^2 = m*n.
  EXPECT_NEAR(EstimateSpectralNormSq(*MakeIdentityOp(10)), 1.0, 1e-6);
  EXPECT_NEAR(EstimateSpectralNormSq(*MakeOnesOp(3, 4), 100), 12.0, 1e-4);
}

TEST(SpectralNormTest, ZeroItersStillEstimates) {
  // iters == 0 used to return the uninitialized placeholder 1.0 for every
  // operator; the guard clamps to one power step, which is exact for any
  // diagonal "gram" with a single scale.
  EXPECT_NEAR(EstimateSpectralNormSqGram(*MakeScaled(MakeIdentityOp(8), 7.0),
                                         0),
              7.0, 1e-9);
}

TEST(SpectralNormTest, SurvivesHugeNormGram) {
  // A pathological Gram with entries ~1e200: the sum of squares inside a
  // naive Norm2 overflows to inf, so the estimate must pre-scale the
  // iterate by its max magnitude each iteration.
  const double huge = 1e200;
  auto gram = MakeScaled(MakeIdentityOp(64), huge);
  const double est = EstimateSpectralNormSqGram(*gram, 10);
  ASSERT_TRUE(std::isfinite(est));
  EXPECT_NEAR(est / huge, 1.0, 1e-9);
}

// Counts every forward/transposed traversal of the wrapped operator, so a
// test can reconstruct exactly how many FISTA passes ran (one Gram apply
// per pass through the default Gram composition).
class CountingOp final : public LinOp {
 public:
  explicit CountingOp(LinOpPtr child)
      : LinOp(child->rows(), child->cols()), child_(std::move(child)) {}
  void ApplyRaw(const double* x, double* y) const override {
    ++fwd_;
    child_->ApplyRaw(x, y);
  }
  void ApplyTRaw(const double* x, double* y) const override {
    ++tr_;
    child_->ApplyTRaw(x, y);
  }
  std::string DebugName() const override { return "Counting"; }
  std::size_t fwd() const { return fwd_; }

 private:
  LinOpPtr child_;
  mutable std::size_t fwd_ = 0, tr_ = 0;
};

TEST(NnlsTest, IterationCountMatchesGramAppliesUnderRestarts) {
  // A rank-1 operator whose dominant direction carries almost no weight
  // in the deterministic power-iteration start vector: one power step
  // underestimates the Lipschitz constant badly, the gradient step
  // overshoots, and the monotone restart branch fires repeatedly.  The
  // restart path used to double-increment the loop counter, so
  // NnlsResult::iterations exceeded the number of Gram applies actually
  // performed (and max_iters was effectively halved).
  const std::size_t n = 64;
  DenseMatrix a(1, n);
  a.At(0, n - 1) = 100.0;
  auto counting = std::make_shared<CountingOp>(MakeDense(std::move(a)));
  Vec b{500.0};
  NnlsOptions opts;
  opts.max_iters = 40;
  opts.power_iters = 1;
  opts.tol = 0.0;  // never converge early: exercise the full loop
  NnlsResult res = Nnls(*counting, b, opts);
  // Forward traversals: power_iters + initial G x0 + one per pass + the
  // final residual report.
  ASSERT_GE(counting->fwd(), opts.power_iters + 2);
  const std::size_t passes = counting->fwd() - opts.power_iters - 2;
  EXPECT_EQ(res.iterations, passes);
  EXPECT_LE(res.iterations, opts.max_iters);
  EXPECT_GT(res.restarts, 0u);
  EXPECT_LE(res.restarts, res.iterations);
}

TEST(LsmrTest, IterationCountScalesGently) {
  // Well-conditioned hierarchical systems converge in << n iterations
  // (the observation that justifies iterative inference, Sec. 7.6).
  const std::size_t n = 1024;
  auto m = MakeVStack({MakeTotalOp(n), MakeIdentityOp(n)});
  Rng rng(7);
  Vec y = m->Apply(RandomVec(n, &rng));
  LsmrResult res = Lsmr(*m, y);
  EXPECT_LT(res.iterations, 50u);
}

}  // namespace
}  // namespace ektelo
