// Tests for the operator library: hierarchies + tree inference, query
// selection, partition selection, HDMM strategy scoring, measurement sets
// and the generic inference operators.
#include <cmath>

#include "gtest/gtest.h"
#include "matrix/combinators.h"
#include "matrix/implicit_ops.h"
#include "matrix/lsmr.h"
#include "ops/hdmm.h"
#include "ops/hierarchy.h"
#include "ops/inference.h"
#include "ops/measurement.h"
#include "ops/partition_select.h"
#include "ops/selection.h"
#include "util/rng.h"
#include "workload/workloads.h"

namespace ektelo {
namespace {

Vec RandomCounts(std::size_t n, Rng* rng, double scale = 20.0) {
  Vec v(n);
  for (auto& x : v) x = std::floor(rng->Uniform(0.0, scale));
  return v;
}

// ------------------------------------------------------------- hierarchy

TEST(HierarchyTest, BinaryTreeStructure) {
  Hierarchy h = BuildHierarchy(8, 2);
  ASSERT_EQ(h.levels.size(), 4u);  // 1 + 2 + 4 + 8
  EXPECT_EQ(h.levels[0][0].lo, 0u);
  EXPECT_EQ(h.levels[0][0].hi, 8u);
  EXPECT_EQ(h.levels[3].size(), 8u);
  EXPECT_EQ(h.TotalNodes(), 15u);
}

TEST(HierarchyTest, NonPowerSizesCoverDomain) {
  for (std::size_t n : {3u, 5u, 7u, 13u, 100u}) {
    Hierarchy h = BuildHierarchy(n, 2);
    // Leaves (nodes with no children) must tile [0, n).
    Vec covered(n, 0.0);
    for (std::size_t l = 0; l < h.levels.size(); ++l) {
      for (std::size_t i = 0; i < h.levels[l].size(); ++i) {
        const bool has_children =
            l + 1 < h.levels.size() &&
            h.child_start[l][i + 1] > h.child_start[l][i];
        if (!has_children)
          for (std::size_t c = h.levels[l][i].lo; c < h.levels[l][i].hi;
               ++c)
            covered[c] += 1.0;
      }
    }
    for (double v : covered) EXPECT_DOUBLE_EQ(v, 1.0);
  }
}

TEST(HierarchyTest, OpRowsAreIntervalSums) {
  Hierarchy h = BuildHierarchy(4, 2);
  auto op = HierarchyOp(h);
  Vec x = {1, 2, 3, 4};
  Vec y = op->Apply(x);
  EXPECT_DOUBLE_EQ(y[0], 10.0);  // root
  EXPECT_DOUBLE_EQ(y[1], 3.0);   // [0,2)
  EXPECT_DOUBLE_EQ(y[2], 7.0);   // [2,4)
  EXPECT_DOUBLE_EQ(y[3], 1.0);   // leaves
}

TEST(HierarchyTest, SensitivityIsTreeHeight) {
  // Each cell is covered once per level.
  auto op = HierarchyOp(BuildHierarchy(16, 2));
  EXPECT_DOUBLE_EQ(op->SensitivityL1(), 5.0);  // levels: 16,8,4,2,1
}

TEST(HierarchyTest, HbBranchingReasonable) {
  // HB picks larger branching for larger domains; always >= 2.
  EXPECT_GE(HbBranchingFactor(16), 2u);
  EXPECT_GE(HbBranchingFactor(1 << 20), 2u);
}

TEST(TreeLsTest, MatchesGenericLeastSquaresOnCompleteTree) {
  // The specialized two-pass solver must equal LSMR on the same system.
  Rng rng(1);
  for (std::size_t n : {4u, 8u, 16u}) {
    Hierarchy h = BuildHierarchy(n, 2);
    auto op = HierarchyOp(h);
    Vec x_true = RandomCounts(n, &rng);
    Vec y = op->Apply(x_true);
    for (auto& v : y) v += rng.Laplace(1.0);  // uniform noise
    Vec x_tree = TreeBasedLeastSquares(h, y);
    Vec x_lsmr = Lsmr(*op, y).x;
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(x_tree[i], x_lsmr[i], 1e-6) << "n=" << n << " i=" << i;
  }
}

TEST(TreeLsTest, ExactOnNoiselessMeasurements) {
  Hierarchy h = BuildHierarchy(8, 2);
  auto op = HierarchyOp(h);
  Vec x_true = {5, 0, 3, 2, 8, 1, 1, 4};
  Vec x = TreeBasedLeastSquares(h, op->Apply(x_true));
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

// ------------------------------------------------------------- selection

TEST(SelectionTest, CanonicalCoverIsExact) {
  Hierarchy h = BuildHierarchy(16, 2);
  Rng rng(2);
  Vec x = RandomCounts(16, &rng);
  for (auto q : std::vector<RangeQuery>{{0, 15}, {3, 11}, {5, 5}, {0, 7}}) {
    double sum = 0.0;
    for (auto [l, i] : CanonicalCover(h, q))
      for (std::size_t c = h.levels[l][i].lo; c < h.levels[l][i].hi; ++c)
        sum += x[c];
    double want = 0.0;
    for (std::size_t c = q.lo; c <= q.hi; ++c) want += x[c];
    EXPECT_NEAR(sum, want, 1e-9);
  }
}

TEST(SelectionTest, CanonicalCoverIsSmall) {
  // Canonical binary decomposition uses O(log n) nodes per range.
  Hierarchy h = BuildHierarchy(1024, 2);
  auto cover = CanonicalCover(h, {1, 1022});
  EXPECT_LE(cover.size(), 2 * 10u);
}

TEST(SelectionTest, GreedyHKeepsH2Sensitivity) {
  Rng rng(3);
  auto ranges = RandomRanges(50, 64, 16, &rng);
  auto g = GreedyHSelect(ranges, 64);
  auto h2 = H2Select(64);
  EXPECT_NEAR(g->SensitivityL1(), h2->SensitivityL1(), 1e-9);
}

TEST(SelectionTest, GreedyHUpweightsUsedLevels) {
  // A workload of only-total queries should upweight the root row
  // relative to a leaf row.
  std::vector<RangeQuery> w(40, RangeQuery{0, 63});
  auto g = GreedyHSelect(w, 64);
  Vec root_row = RowOf(*g, 0);
  DenseMatrix d = g->MaterializeDense();
  double root_w = d.At(0, 0);
  double leaf_w = d.At(d.rows() - 1, 63);
  EXPECT_GT(root_w, leaf_w);
}

TEST(SelectionTest, QuadtreeCoversAndNests) {
  auto q = QuadtreeSelect(4, 4);
  Vec x(16, 1.0);
  Vec y = q->Apply(x);
  EXPECT_DOUBLE_EQ(y[0], 16.0);  // root rectangle
  EXPECT_DOUBLE_EQ(q->SensitivityL1(), 3.0);  // 3 levels for 4x4
}

TEST(SelectionTest, GridCellsPartitionDomain) {
  auto g = GridCellsSelect(6, 6, 3, 3);
  EXPECT_EQ(g->rows(), 9u);
  EXPECT_DOUBLE_EQ(g->SensitivityL1(), 1.0);  // disjoint cells
  Vec x(36, 1.0);
  Vec y = g->Apply(x);
  for (double v : y) EXPECT_DOUBLE_EQ(v, 4.0);
}

TEST(SelectionTest, UniformGridSideScalesWithData) {
  EXPECT_EQ(UniformGridSide(0.0, 1.0, 64), 1u);
  std::size_t small = UniformGridSide(1e3, 0.1, 1024);
  std::size_t large = UniformGridSide(1e6, 0.1, 1024);
  EXPECT_LT(small, large);
  EXPECT_LE(large, 1024u);
}

TEST(SelectionTest, StripeKronShape) {
  auto m = StripeKronSelect({8, 3, 2}, 0);
  // HB(8) nodes x identity(3) x identity(2).
  EXPECT_EQ(m->cols(), 48u);
  EXPECT_EQ(m->rows() % 6, 0u);
  // Sensitivity = HB height (identity factors contribute 1).
  EXPECT_DOUBLE_EQ(m->SensitivityL1(), HbSelect(8)->SensitivityL1());
}

// ----------------------------------------------------- partition select

TEST(PartitionSelectTest, GridPartition2DBlocks) {
  Partition p = GridPartition2D(4, 4, 2, 2);
  EXPECT_EQ(p.num_groups(), 4u);
  EXPECT_EQ(p.group_of(0), p.group_of(1));      // (0,0) and (0,1)
  EXPECT_EQ(p.group_of(0), p.group_of(4 + 1));  // (1,1)
  EXPECT_NE(p.group_of(0), p.group_of(2));      // (0,2) in next block
}

TEST(PartitionSelectTest, StripePartitionGroupsByRest) {
  // dims {4, 3}, stripe along dim 0: groups = 3 (one per dim-1 value),
  // each group's cells ordered by the stripe coordinate.
  Partition p = StripePartition({4, 3}, 0);
  EXPECT_EQ(p.num_groups(), 3u);
  auto groups = p.Groups();
  for (std::size_t g = 0; g < 3; ++g) {
    ASSERT_EQ(groups[g].size(), 4u);
    for (std::size_t k = 0; k < 4; ++k)
      EXPECT_EQ(groups[g][k], k * 3 + g);  // cell = i*3 + j
  }
}

TEST(PartitionSelectTest, StripePartitionLastDim) {
  Partition p = StripePartition({4, 3}, 1);
  EXPECT_EQ(p.num_groups(), 4u);
  auto groups = p.Groups();
  for (std::size_t g = 0; g < 4; ++g)
    for (std::size_t k = 0; k < 3; ++k)
      EXPECT_EQ(groups[g][k], g * 3 + k);
}

TEST(PartitionSelectTest, MarginalPartitionMatchesMarginalWorkload) {
  // Reducing by MarginalPartition must equal applying MarginalWorkload.
  Rng rng(4);
  std::vector<std::size_t> dims = {3, 4, 2};
  Schema s({{"a", 3}, {"b", 4}, {"c", 2}});
  Vec x = RandomCounts(24, &rng);
  Partition p = MarginalPartition(dims, {0, 2});
  Vec reduced = p.ReduceOp()->Apply(x);
  Vec marginal = MarginalWorkload(s, {"a", "c"})->Apply(x);
  ASSERT_EQ(reduced.size(), marginal.size());
  for (std::size_t i = 0; i < reduced.size(); ++i)
    EXPECT_NEAR(reduced[i], marginal[i], 1e-9);
}

TEST(PartitionSelectTest, DawaDpFindsUniformRegions) {
  // Step function with two perfectly uniform halves: the DP should merge
  // whole halves rather than fragmenting them.
  Vec x(64, 1.0);
  for (std::size_t i = 32; i < 64; ++i) x[i] = 9.0;
  Partition p = DawaIntervalPartition(x, 1.0);
  EXPECT_LE(p.num_groups(), 4u);
  EXPECT_NE(p.group_of(0), p.group_of(63));
}

TEST(PartitionSelectTest, DawaDpKeepsSpikesSeparate) {
  Vec x(32, 0.0);
  x[10] = 100.0;
  Partition p = DawaIntervalPartition(x, 0.5);
  // The spike cell should not share a group with everything.
  EXPECT_GT(p.num_groups(), 1u);
}

TEST(PartitionSelectTest, DawaPenaltyControlsGranularity) {
  Rng rng(5);
  Vec x = RandomCounts(128, &rng, 50.0);
  Partition fine = DawaIntervalPartition(x, 0.01);
  Partition coarse = DawaIntervalPartition(x, 1000.0);
  EXPECT_GE(fine.num_groups(), coarse.num_groups());
}

TEST(PartitionSelectTest, AhpClusterThresholdsAndGroups) {
  Vec noisy = {0.2, 100.0, 0.1, 101.0, 55.0, -0.4};
  Partition p = AhpClusterPartition(noisy, 1.0, 5.0);
  // The two ~100 cells cluster together; the ~0 cells cluster together.
  EXPECT_EQ(p.group_of(1), p.group_of(3));
  EXPECT_EQ(p.group_of(0), p.group_of(2));
  EXPECT_EQ(p.group_of(0), p.group_of(5));
  EXPECT_NE(p.group_of(0), p.group_of(4));
}

// ------------------------------------------------------------- HDMM

TEST(HdmmTest, TseMatchesKnownIdentityCase) {
  // W = A = Identity(n): TSE = 1^2 * trace(I) = n.
  auto id = MakeIdentityOp(6);
  EXPECT_NEAR(MatrixMechanismTse(*id, *id), 6.0, 1e-6);
}

TEST(HdmmTest, PrefersIdentityForIdentityWorkload) {
  HdmmChoice c = HdmmSelect1D(*MakeIdentityOp(64), 64);
  EXPECT_EQ(c.name, "Identity");
}

TEST(HdmmTest, PrefersHierarchicalForPrefixWorkload) {
  HdmmChoice c = HdmmSelect1D(*MakePrefixOp(64), 64);
  EXPECT_NE(c.name, "Identity");
  // And it should genuinely beat Identity on the scored TSE.
  const double tse_id =
      MatrixMechanismTse(*MakePrefixOp(64), *MakeIdentityOp(64));
  EXPECT_LT(c.scored_tse, tse_id);
}

TEST(HdmmTest, KroneckerComposition) {
  auto strat = HdmmSelect({MakeIdentityOp(8), MakePrefixOp(8)}, {8, 8});
  EXPECT_EQ(strat->cols(), 64u);
}

// ---------------------------------------------------- measurement + inf

TEST(MeasurementSetTest, StackingAndWeighting) {
  MeasurementSet mset;
  mset.Add(MakeIdentityOp(4), Vec{1, 2, 3, 4}, 2.0);
  mset.Add(MakeTotalOp(4), Vec{10}, 0.5);
  EXPECT_EQ(mset.TotalQueries(), 5u);
  Vec wy = mset.WeightedY();
  EXPECT_DOUBLE_EQ(wy[0], 0.5);   // 1 / scale 2
  EXPECT_DOUBLE_EQ(wy[4], 20.0);  // 10 / scale 0.5
  // Weighted op rows scale the same way.
  DenseMatrix d = mset.WeightedOp()->MaterializeDense();
  EXPECT_DOUBLE_EQ(d.At(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(d.At(4, 0), 2.0);
}

TEST(InferenceTest, LsRecoversExactData) {
  Rng rng(6);
  Vec x_true = RandomCounts(32, &rng);
  auto m = MakeVStack({MakeTotalOp(32), MakeIdentityOp(32)});
  MeasurementSet mset;
  mset.Add(m, m->Apply(x_true), 1.0);
  Vec xhat = LeastSquaresInference(mset);
  for (std::size_t i = 0; i < 32; ++i) EXPECT_NEAR(xhat[i], x_true[i], 1e-6);
}

TEST(InferenceTest, WeightingImprovesOverUnweighted) {
  // Two identity measurements with very different noise: weighted LS
  // should land closer to the low-noise one.
  const std::size_t n = 128;
  Rng rng(7);
  Vec x_true = RandomCounts(n, &rng);
  Vec y_precise = x_true, y_noisy = x_true;
  for (auto& v : y_precise) v += rng.Laplace(0.1);
  for (auto& v : y_noisy) v += rng.Laplace(10.0);
  MeasurementSet mset;
  mset.Add(MakeIdentityOp(n), y_precise, 0.1);
  mset.Add(MakeIdentityOp(n), y_noisy, 10.0);
  Vec xhat = LeastSquaresInference(mset);
  EXPECT_LT(Rmse(xhat, x_true), 0.5);  // close to the precise answers
}

TEST(InferenceTest, Theorem53MoreMeasurementsNeverHurt) {
  // Expected-error comparison via the matrix mechanism: adding a (unit
  // variance) measurement row can only decrease q's expected error.
  auto m1 = MakeIdentityOp(8);
  auto m2 = MakeVStack({MakeIdentityOp(8), MakeTotalOp(8)});
  // Error of q under LS = q (M^T M)^-1 q^T (all variances 1).
  auto err = [](const LinOp& m, const Vec& q) {
    DenseMatrix gram = m.MaterializeDense().Gram();
    DenseMatrix inv = PseudoInverse(gram, 1e-12);
    Vec t = inv.Matvec(q);
    return Dot(q, t);
  };
  Vec q(8, 1.0);  // the total query
  EXPECT_LE(err(*m2, q), err(*m1, q) + 1e-9);
  Vec q2(8, 0.0);
  q2[3] = 1.0;  // a point query
  EXPECT_LE(err(*m2, q2), err(*m1, q2) + 1e-9);
}

TEST(InferenceTest, NnlsInferenceNonNegativeAndUsesTotal) {
  Rng rng(8);
  const std::size_t n = 16;
  Vec x_true = RandomCounts(n, &rng, 3.0);
  const double total = Sum(x_true);
  Vec y = x_true;
  for (auto& v : y) v += rng.Laplace(3.0);
  MeasurementSet mset;
  mset.Add(MakeIdentityOp(n), y, 3.0);
  Vec xhat = NnlsInference(mset, total);
  double s = 0.0;
  for (double v : xhat) {
    EXPECT_GE(v, -1e-9);
    s += v;
  }
  EXPECT_NEAR(s, total, 0.05 * total + 1.0);
}

TEST(InferenceTest, MwPreservesTotalAndImproves) {
  Rng rng(9);
  const std::size_t n = 64;
  Vec x_true(n, 0.0);
  for (std::size_t i = 0; i < n / 4; ++i) x_true[i] = 40.0;  // skewed
  const double total = Sum(x_true);
  auto m = RangeQueryOp({{0, 15}, {16, 63}, {0, 31}}, n);
  Vec y = m->Apply(x_true);
  for (auto& v : y) v += rng.Laplace(2.0);
  MeasurementSet mset;
  mset.Add(m, y, 2.0);
  Vec xhat = MultWeightsInference(mset, total, {.iterations = 80});
  EXPECT_NEAR(Sum(xhat), total, 1e-6 * total);
  // Better than the uniform start on the measured queries.
  Vec uniform(n, total / n);
  double err_mw = Rmse(m->Apply(xhat), m->Apply(x_true));
  double err_uni = Rmse(m->Apply(uniform), m->Apply(x_true));
  EXPECT_LT(err_mw, err_uni);
}

TEST(InferenceTest, DirectMatchesIterativeSmall) {
  Rng rng(10);
  const std::size_t n = 24;
  Vec x_true = RandomCounts(n, &rng);
  auto m = MakeVStack({MakeIdentityOp(n), MakeTotalOp(n), MakePrefixOp(n)});
  Vec y = m->Apply(x_true);
  for (auto& v : y) v += rng.Laplace(1.0);
  MeasurementSet mset;
  mset.Add(m, y, 1.0);
  Vec direct = DirectLeastSquaresInference(mset);
  Vec iter = LeastSquaresInference(mset);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(direct[i], iter[i], 1e-4);
}

}  // namespace
}  // namespace ektelo
