// Tests for the dense/CSR/Haar linear-algebra substrate.
#include <cmath>

#include "gtest/gtest.h"
#include "linalg/csr.h"
#include "linalg/dense.h"
#include "linalg/haar.h"
#include "linalg/vec.h"
#include "util/rng.h"

namespace ektelo {
namespace {

DenseMatrix RandomDense(std::size_t m, std::size_t n, Rng* rng,
                        double density = 1.0) {
  DenseMatrix a(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (rng->Uniform() < density) a.At(i, j) = rng->Normal();
  return a;
}

Vec RandomVec(std::size_t n, Rng* rng) {
  Vec v(n);
  for (auto& x : v) x = rng->Normal();
  return v;
}

TEST(VecTest, DotAndNorms) {
  Vec a = {3.0, -4.0};
  EXPECT_DOUBLE_EQ(Dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(Norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(Norm1(a), 7.0);
  EXPECT_DOUBLE_EQ(Sum(a), -1.0);
  EXPECT_DOUBLE_EQ(MaxAbs(a), 4.0);
}

TEST(VecTest, AxpyAndRmse) {
  Vec x = {1.0, 2.0};
  Vec y = {10.0, 20.0};
  Axpy(2.0, x, &y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
  EXPECT_DOUBLE_EQ(Rmse(x, x), 0.0);
  EXPECT_DOUBLE_EQ(Rmse(Vec{0.0, 0.0}, Vec{3.0, 4.0}),
                   std::sqrt(25.0 / 2.0));
}

TEST(DenseTest, MatvecAgainstHand) {
  DenseMatrix a(2, 3);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(0, 2) = 3;
  a.At(1, 0) = 4;
  a.At(1, 1) = 5;
  a.At(1, 2) = 6;
  Vec y = a.Matvec({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
  Vec z = a.RmatVec({1.0, 1.0});
  EXPECT_DOUBLE_EQ(z[0], 5.0);
  EXPECT_DOUBLE_EQ(z[1], 7.0);
  EXPECT_DOUBLE_EQ(z[2], 9.0);
}

TEST(DenseTest, TransposeRoundTrip) {
  Rng rng(1);
  DenseMatrix a = RandomDense(4, 7, &rng);
  EXPECT_TRUE(a.Transpose().Transpose().ApproxEquals(a));
}

TEST(DenseTest, MatmulMatchesManual) {
  Rng rng(2);
  DenseMatrix a = RandomDense(3, 4, &rng);
  DenseMatrix b = RandomDense(4, 5, &rng);
  DenseMatrix c = a.Matmul(b);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 5; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < 4; ++k) s += a.At(i, k) * b.At(k, j);
      EXPECT_NEAR(c.At(i, j), s, 1e-12);
    }
}

TEST(DenseTest, GramMatchesTransposeProduct) {
  Rng rng(3);
  DenseMatrix a = RandomDense(6, 4, &rng);
  DenseMatrix g = a.Gram();
  DenseMatrix g2 = a.Transpose().Matmul(a);
  EXPECT_TRUE(g.ApproxEquals(g2, 1e-10));
}

TEST(DenseTest, ColNorms) {
  DenseMatrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(1, 0) = -2;
  a.At(0, 1) = 0.5;
  EXPECT_DOUBLE_EQ(a.MaxColNormL1(), 3.0);
  EXPECT_DOUBLE_EQ(a.MaxColNormL2(), std::sqrt(5.0));
}

TEST(CholeskyTest, FactorAndSolveSpd) {
  Rng rng(4);
  DenseMatrix a = RandomDense(8, 5, &rng);
  DenseMatrix g = a.Gram();
  for (std::size_t i = 0; i < 5; ++i) g.At(i, i) += 1.0;  // ensure SPD
  Vec x_true = RandomVec(5, &rng);
  Vec b = g.Matvec(x_true);
  DenseMatrix chol = g;
  ASSERT_TRUE(CholeskyFactor(&chol));
  Vec x = CholeskySolve(chol, b);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(CholeskyTest, RejectsIndefinite) {
  DenseMatrix a(2, 2);
  a.At(0, 0) = 1.0;
  a.At(1, 1) = -1.0;
  EXPECT_FALSE(CholeskyFactor(&a));
}

TEST(DirectLsTest, RecoversOverdeterminedSolution) {
  Rng rng(5);
  DenseMatrix a = RandomDense(20, 6, &rng);
  Vec x_true = RandomVec(6, &rng);
  Vec b = a.Matvec(x_true);
  Vec x = DirectLeastSquares(a, b);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-5);
}

TEST(PseudoInverseTest, LeftInverseOnFullColumnRank) {
  Rng rng(6);
  DenseMatrix a = RandomDense(10, 4, &rng);
  DenseMatrix pinv = PseudoInverse(a);
  DenseMatrix id = pinv.Matmul(a);
  EXPECT_TRUE(id.ApproxEquals(DenseMatrix::Identity(4), 1e-5));
}

// ------------------------------------------------------------------- CSR

TEST(CsrTest, FromTripletsSumsDuplicates) {
  CsrMatrix m = CsrMatrix::FromTriplets(
      2, 2, {{0, 0, 1.0}, {0, 0, 2.0}, {1, 1, 5.0}});
  EXPECT_EQ(m.nnz(), 2u);
  DenseMatrix d = m.ToDense();
  EXPECT_DOUBLE_EQ(d.At(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(d.At(1, 1), 5.0);
}

TEST(CsrTest, MatvecMatchesDense) {
  Rng rng(7);
  DenseMatrix d = RandomDense(9, 13, &rng, 0.3);
  CsrMatrix s = CsrMatrix::FromDense(d);
  Vec x = RandomVec(13, &rng);
  Vec y1 = d.Matvec(x);
  Vec y2 = s.Matvec(x);
  for (std::size_t i = 0; i < 9; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
  Vec u = RandomVec(9, &rng);
  Vec z1 = d.RmatVec(u);
  Vec z2 = s.RmatVec(u);
  for (std::size_t j = 0; j < 13; ++j) EXPECT_NEAR(z1[j], z2[j], 1e-12);
}

TEST(CsrTest, TransposeMatchesDense) {
  Rng rng(8);
  DenseMatrix d = RandomDense(5, 8, &rng, 0.4);
  CsrMatrix s = CsrMatrix::FromDense(d);
  EXPECT_TRUE(s.Transpose().ToDense().ApproxEquals(d.Transpose(), 1e-12));
}

TEST(CsrTest, MatmulMatchesDense) {
  Rng rng(9);
  DenseMatrix da = RandomDense(4, 6, &rng, 0.5);
  DenseMatrix db = RandomDense(6, 3, &rng, 0.5);
  CsrMatrix sa = CsrMatrix::FromDense(da);
  CsrMatrix sb = CsrMatrix::FromDense(db);
  EXPECT_TRUE(sa.Matmul(sb).ToDense().ApproxEquals(da.Matmul(db), 1e-10));
}

TEST(CsrTest, KroneckerMatchesDenseDefinition) {
  Rng rng(10);
  DenseMatrix da = RandomDense(2, 3, &rng);
  DenseMatrix db = RandomDense(3, 2, &rng);
  CsrMatrix k =
      CsrMatrix::FromDense(da).Kronecker(CsrMatrix::FromDense(db));
  ASSERT_EQ(k.rows(), 6u);
  ASSERT_EQ(k.cols(), 6u);
  DenseMatrix kd = k.ToDense();
  for (std::size_t ia = 0; ia < 2; ++ia)
    for (std::size_t ib = 0; ib < 3; ++ib)
      for (std::size_t ja = 0; ja < 3; ++ja)
        for (std::size_t jb = 0; jb < 2; ++jb)
          EXPECT_NEAR(kd.At(ia * 3 + ib, ja * 2 + jb),
                      da.At(ia, ja) * db.At(ib, jb), 1e-12);
}

TEST(CsrTest, VStackStacks) {
  CsrMatrix a = CsrMatrix::Identity(2);
  CsrMatrix b = CsrMatrix::FromTriplets(1, 2, {{0, 0, 1.0}, {0, 1, 1.0}});
  CsrMatrix s = a.VStack(b);
  ASSERT_EQ(s.rows(), 3u);
  DenseMatrix d = s.ToDense();
  EXPECT_DOUBLE_EQ(d.At(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(d.At(2, 1), 1.0);
}

TEST(CsrTest, ScaleRowsAndNorms) {
  CsrMatrix a = CsrMatrix::FromTriplets(2, 2,
                                        {{0, 0, 1.0}, {1, 0, -2.0},
                                         {1, 1, 1.0}});
  CsrMatrix s = a.ScaleRows({2.0, 3.0});
  DenseMatrix d = s.ToDense();
  EXPECT_DOUBLE_EQ(d.At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d.At(1, 0), -6.0);
  EXPECT_DOUBLE_EQ(a.MaxColNormL1(), 3.0);
  EXPECT_DOUBLE_EQ(a.MaxColNormL2(), std::sqrt(5.0));
}

// ------------------------------------------------------------------ Haar

TEST(HaarTest, PowerOfTwoHelpers) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(12));
  EXPECT_EQ(NextPowerOfTwo(12), 16u);
  EXPECT_EQ(NextPowerOfTwo(16), 16u);
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
}

TEST(HaarTest, AnalysisMatchesMaterializedMatrix) {
  Rng rng(11);
  for (std::size_t n : {2u, 8u, 32u}) {
    CsrMatrix h = HaarMatrixSparse(n);
    Vec x = RandomVec(n, &rng);
    Vec y_fast(n), y_mat = h.Matvec(x);
    HaarAnalysis(x.data(), y_fast.data(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(y_fast[i], y_mat[i], 1e-10);
  }
}

TEST(HaarTest, SynthesisIsTransposedAnalysis) {
  Rng rng(12);
  for (std::size_t n : {4u, 16u}) {
    CsrMatrix h = HaarMatrixSparse(n);
    Vec x = RandomVec(n, &rng);
    Vec y_fast(n), y_mat = h.RmatVec(x);
    HaarSynthesis(x.data(), y_fast.data(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(y_fast[i], y_mat[i], 1e-10);
  }
}

TEST(HaarTest, FirstCoefficientIsTotal) {
  Vec x = {1.0, 2.0, 3.0, 4.0};
  Vec y(4);
  HaarAnalysis(x.data(), y.data(), 4);
  EXPECT_DOUBLE_EQ(y[0], 10.0);   // total
  EXPECT_DOUBLE_EQ(y[1], -4.0);   // (1+2) - (3+4)
  EXPECT_DOUBLE_EQ(y[2], -1.0);   // 1 - 2
  EXPECT_DOUBLE_EQ(y[3], -1.0);   // 3 - 4
}

TEST(HaarTest, SensitivityIsLogarithmic) {
  // Every column of the Haar matrix has L1 norm exactly 1 + log2(n).
  for (std::size_t n : {2u, 16u, 64u}) {
    CsrMatrix h = HaarMatrixSparse(n);
    EXPECT_DOUBLE_EQ(h.MaxColNormL1(), 1.0 + std::log2(double(n)));
  }
}

}  // namespace
}  // namespace ektelo
